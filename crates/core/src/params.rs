//! CKKS parameter sets (`CKKS::Parameters` in FIDESlib).
//!
//! Parameters follow the paper's `[log N, L, Δ, dnum]` notation plus the
//! GPU-execution knobs the paper exposes: the **limb batch** size (§III-F.1)
//! and kernel-fusion toggles (§III-F.5, used by the ablation benchmarks).

use fides_client::RawParams;
use serde::{Deserialize, Serialize};

use crate::error::{FidesError, Result};

/// Kernel-fusion configuration (all on by default, as in FIDESlib).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Fuse SwitchModulus + combine into the Rescale NTT kernels.
    pub rescale: bool,
    /// Fuse the `P^{-1}(x − NTT(x'))` sequence into the ModDown NTT kernels.
    pub mod_down: bool,
    /// Fuse digit scaling into iNTT and key inner products into NTT during
    /// key switching (the HMult fusion).
    pub key_switch: bool,
    /// Fuse dot-product accumulations into single kernels.
    pub dot_product: bool,
    /// Graph-level fusion: the scheduling pass
    /// ([`Planner`](crate::sched::Planner)) collapses adjacent same-stream
    /// elementwise-class launches (adds, scalar multiplies, fills,
    /// automorphism pre-permutes) into single launches.
    pub elementwise: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            rescale: true,
            mod_down: true,
            key_switch: true,
            dot_product: true,
            elementwise: true,
        }
    }
}

impl FusionConfig {
    /// Everything off — the ablation baseline.
    pub fn none() -> Self {
        Self {
            rescale: false,
            mod_down: false,
            key_switch: false,
            dot_product: false,
            elementwise: false,
        }
    }
}

/// A CKKS parameter set in the paper's `[log N, L, Δ, dnum]` notation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CkksParameters {
    /// log2 of the ring degree.
    pub log_n: usize,
    /// Multiplicative depth (number of scaling primes).
    pub levels: usize,
    /// log2 of the encoding scale `Δ`.
    pub scale_bits: u32,
    /// Bits of the first (decryption) modulus and the auxiliary primes.
    pub first_mod_bits: u32,
    /// Key-switching digit count.
    pub dnum: usize,
    /// Limbs per kernel launch (§III-F.1). Tunable per device; Fig. 7 sweeps
    /// this.
    pub limb_batch: usize,
    /// Kernel fusion toggles.
    pub fusion: FusionConfig,
    /// CUDA streams limb batches cycle over (round-robin). The scheduling
    /// pass remaps recorded launches onto this many streams.
    pub num_streams: usize,
    /// Route server ops through the recorded-graph execution engine
    /// ([`sched`](crate::sched)): ops record kernel nodes, a planning pass
    /// fuses/streams them, and an executor replays the plan. `false`
    /// restores the eager per-op dispatch (A/B baseline).
    pub graph_exec: bool,
    /// Scheduler v2 (default on): the planning pass derives a dependency
    /// DAG from buffer read/write sets and barriers, critical-path
    /// list-schedules it onto `num_streams`, and binds buffers to
    /// liveness-colored pool slots. `false` restores the v1 modulo stream
    /// remap without memory pooling (the A/B baseline `BENCH_PR5.json`
    /// gates against). Either way results are bit-identical — only the
    /// replayed schedule and the memory plan change.
    pub sched_v2: bool,
    /// Fraction of peak memory bandwidth the NTT access pattern achieves
    /// (1.0 for FIDESlib's coalesced hierarchical scheme; lower for
    /// Phantom-style monolithic strided kernels).
    pub access_efficiency: f64,
    /// Multiplier on NTT butterfly compute (1.0 for Radix-2; higher for
    /// Radix-8, whose computational complexity the paper identifies as the
    /// primary NTT bottleneck, §III-F.4).
    pub ntt_op_factor: f64,
    /// Simulated devices the serving layer shards tenants across (the
    /// distributed path — [`sched::partition`](crate::sched::partition)
    /// and the serve layer's device workers). `1` (the default) is the
    /// classic single-device pipeline.
    pub num_devices: usize,
}

impl CkksParameters {
    /// Builds a parameter set; validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns [`FidesError::InvalidParams`] when sizes are inconsistent.
    pub fn new(
        log_n: usize,
        levels: usize,
        scale_bits: u32,
        dnum: usize,
    ) -> Result<CkksParameters> {
        let p = CkksParameters {
            log_n,
            levels,
            scale_bits,
            first_mod_bits: 60,
            dnum,
            limb_batch: 4,
            fusion: FusionConfig::default(),
            num_streams: crate::context::NUM_STREAMS,
            graph_exec: true,
            sched_v2: true,
            access_efficiency: 1.0,
            ntt_op_factor: 1.0,
            num_devices: 1,
        };
        p.validate()?;
        Ok(p)
    }

    /// Overrides the limb batch (builder style).
    pub fn with_limb_batch(mut self, batch: usize) -> Self {
        self.limb_batch = batch.max(1);
        self
    }

    /// Overrides fusion configuration (builder style).
    pub fn with_fusion(mut self, fusion: FusionConfig) -> Self {
        self.fusion = fusion;
        self
    }

    /// Overrides the first-modulus size (builder style).
    pub fn with_first_mod_bits(mut self, bits: u32) -> Self {
        self.first_mod_bits = bits;
        self
    }

    /// Overrides the stream count (builder style; clamped to ≥ 1).
    pub fn with_num_streams(mut self, streams: usize) -> Self {
        self.num_streams = streams.max(1);
        self
    }

    /// Enables or disables the recorded-graph execution engine (builder
    /// style).
    pub fn with_graph_exec(mut self, enabled: bool) -> Self {
        self.graph_exec = enabled;
        self
    }

    /// Enables or disables scheduler v2 — dependency-aware stream
    /// scheduling plus the memory liveness pass (builder style).
    pub fn with_sched_v2(mut self, enabled: bool) -> Self {
        self.sched_v2 = enabled;
        self
    }

    /// Overrides the NTT memory-access efficiency (builder style; used by
    /// the Phantom comparator).
    pub fn with_access_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0);
        self.access_efficiency = eff;
        self
    }

    /// Overrides the NTT butterfly compute factor (builder style; used by
    /// the Phantom comparator's Radix-8 profile).
    pub fn with_ntt_op_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.ntt_op_factor = factor;
        self
    }

    /// Overrides the simulated device count (builder style; clamped to
    /// ≥ 1). Values above 1 make the serve layer shard tenants across
    /// that many device workers.
    pub fn with_num_devices(mut self, devices: usize) -> Self {
        self.num_devices = devices.max(1);
        self
    }

    fn validate(&self) -> Result<()> {
        if !(4..=17).contains(&self.log_n) {
            return Err(FidesError::InvalidParams(format!(
                "log_n {} out of range",
                self.log_n
            )));
        }
        if self.levels == 0 {
            return Err(FidesError::InvalidParams("need at least one level".into()));
        }
        if self.dnum == 0 || self.dnum > self.levels + 1 {
            return Err(FidesError::InvalidParams(format!(
                "dnum {} must be in 1..=L+1={}",
                self.dnum,
                self.levels + 1
            )));
        }
        if self.scale_bits >= self.first_mod_bits {
            return Err(FidesError::InvalidParams(
                "scale must be smaller than the first modulus".into(),
            ));
        }
        if self.first_mod_bits > 60 {
            return Err(FidesError::InvalidParams(
                "first modulus limited to 60 bits".into(),
            ));
        }
        // Primes must satisfy q ≡ 1 (mod 2N).
        if self.scale_bits as usize <= self.log_n + 1 {
            return Err(FidesError::InvalidParams(
                "scale too small for ring degree".into(),
            ));
        }
        Ok(())
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// The paper's evaluation default: `[2^16, 29, 2^59, 4]`.
    pub fn paper_default() -> CkksParameters {
        CkksParameters::new(16, 29, 59, 4).expect("paper parameters are valid")
    }

    /// The logistic-regression workload parameters: `[2^16, 26, 2^59, 4]`
    /// (Table VII).
    pub fn paper_lr() -> CkksParameters {
        CkksParameters::new(16, 26, 59, 4).expect("LR parameters are valid")
    }

    /// The five Fig. 8 parameter sets
    /// `[log N, L, Δ, dnum] ∈ {[13,5,36,2], [14,9,41,3], [15,15,47,3],
    /// [16,29,59,4], [17,44,59,4]}`.
    pub fn fig8_sets() -> Vec<CkksParameters> {
        vec![
            CkksParameters::new(13, 5, 36, 2)
                .unwrap()
                .with_first_mod_bits(48),
            CkksParameters::new(14, 9, 41, 3)
                .unwrap()
                .with_first_mod_bits(52),
            CkksParameters::new(15, 15, 47, 3)
                .unwrap()
                .with_first_mod_bits(55),
            CkksParameters::new(16, 29, 59, 4).unwrap(),
            CkksParameters::new(17, 44, 59, 4).unwrap(),
        ]
    }

    /// Small functional-test parameters: fast to execute bit-exactly.
    pub fn toy() -> CkksParameters {
        CkksParameters::new(10, 4, 40, 2)
            .expect("toy parameters are valid")
            .with_limb_batch(2)
    }

    /// Toy parameters deep enough for functional bootstrapping tests.
    pub fn toy_boot() -> CkksParameters {
        CkksParameters::new(11, 20, 50, 3)
            .expect("toy boot parameters are valid")
            .with_first_mod_bits(55)
    }

    /// Generates the concrete prime chains (shared client/server
    /// description).
    pub fn to_raw(&self) -> RawParams {
        RawParams::generate(
            self.log_n,
            self.levels,
            self.scale_bits,
            self.first_mod_bits,
            self.dnum,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let p = CkksParameters::paper_default();
        assert_eq!(p.n(), 1 << 16);
        assert_eq!(p.levels, 29);
        assert_eq!(p.dnum, 4);
        let raw = p.to_raw();
        assert_eq!(raw.moduli_q.len(), 30);
        assert_eq!(raw.moduli_p.len(), 8); // alpha = ceil(30/4)
        assert_eq!(raw.max_level(), 29);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(CkksParameters::new(3, 4, 40, 2).is_err(), "log_n too small");
        assert!(CkksParameters::new(12, 0, 40, 2).is_err(), "no levels");
        assert!(CkksParameters::new(12, 4, 40, 0).is_err(), "dnum 0");
        assert!(CkksParameters::new(12, 4, 40, 6).is_err(), "dnum too large");
        assert!(
            CkksParameters::new(12, 4, 60, 2).is_err(),
            "scale ≥ first mod"
        );
        assert!(
            CkksParameters::new(12, 4, 12, 2).is_err(),
            "scale too small for N"
        );
    }

    #[test]
    fn builder_overrides() {
        let p = CkksParameters::toy()
            .with_limb_batch(8)
            .with_fusion(FusionConfig::none());
        assert_eq!(p.limb_batch, 8);
        assert!(!p.fusion.rescale);
        assert!(!p.fusion.elementwise);
        let p = p.with_limb_batch(0);
        assert_eq!(p.limb_batch, 1, "batch clamped to 1");
    }

    #[test]
    fn scheduling_knobs() {
        let p = CkksParameters::toy();
        assert_eq!(p.num_streams, crate::context::NUM_STREAMS);
        assert!(p.graph_exec, "graph engine is the default path");
        assert!(p.fusion.elementwise);
        let p = p.with_num_streams(0).with_graph_exec(false);
        assert_eq!(p.num_streams, 1, "stream count clamped to 1");
        assert!(!p.graph_exec);
        let p = p.with_num_streams(4);
        assert_eq!(p.num_streams, 4);
        assert_eq!(p.num_devices, 1, "single device is the default");
        let p = p.with_num_devices(0);
        assert_eq!(p.num_devices, 1, "device count clamped to 1");
        let p = p.with_num_devices(4);
        assert_eq!(p.num_devices, 4);
    }

    #[test]
    fn fig8_sets_match_paper() {
        let sets = CkksParameters::fig8_sets();
        assert_eq!(sets.len(), 5);
        assert_eq!(
            (
                sets[0].log_n,
                sets[0].levels,
                sets[0].scale_bits,
                sets[0].dnum
            ),
            (13, 5, 36, 2)
        );
        assert_eq!(
            (
                sets[4].log_n,
                sets[4].levels,
                sets[4].scale_bits,
                sets[4].dnum
            ),
            (17, 44, 59, 4)
        );
    }

    #[test]
    fn toy_raw_chain_is_consistent() {
        let raw = CkksParameters::toy().to_raw();
        assert_eq!(raw.moduli_q.len(), 5);
        // All primes NTT-friendly.
        for &q in raw.moduli_q.iter().chain(&raw.moduli_p) {
            assert_eq!(q % (2 * raw.n() as u64), 1);
        }
    }
}
