//! Plan executors: where a scheduled plan actually runs.

use std::sync::Arc;

use fides_gpu_sim::GpuSim;

use super::plan::{ExecPlan, PlanStep};

/// An execution substrate for [`ExecPlan`]s.
///
/// The gpu-sim backend replays plans onto the multi-stream timeline
/// ([`GpuReplayExecutor`]); a real CUDA backend would issue the same steps
/// as graph launches, and a multi-GPU backend would partition the plan
/// across devices before executing each shard.
pub trait PlanExecutor {
    /// Runs every step of the plan in issue order.
    fn execute(&self, plan: &ExecPlan);
}

/// Replays a plan onto the simulated device: each launch advances the
/// timeline and ledger exactly as an eager launch would (bodies are empty —
/// the functional math already ran while recording), and each fence applies
/// the recorded cross-limb sync point.
///
/// When the plan carries a liveness slot binding (scheduler v2), launches
/// present **slot-canonical** buffer ids to the device: every plan-created
/// temporary bound to pool slot `s` is replayed as buffer
/// `SLOT_ID_BASE | s`, so temporaries that time-share a slot alias the
/// same lines in the device's L2 residency model — a later tenant of a
/// slot inherits whatever residency its predecessor left behind, exactly
/// as a stream-ordered allocator's physical reuse behaves. External
/// buffers (first touch is a read — caller-owned ciphertext and key
/// storage) are absent from the binding and keep their recorded ids, so
/// residency they accumulated in earlier plan executions still hits.
/// Liveness guarantees no two buffers touched by one launch share a slot,
/// so the rewrite never self-aliases a launch.
#[derive(Debug)]
pub struct GpuReplayExecutor<'a> {
    gpu: &'a Arc<GpuSim>,
}

/// High-bit namespace for slot-canonical buffer ids, keeping them disjoint
/// from every recorded buffer id.
const SLOT_ID_BASE: u64 = 1 << 63;

impl<'a> GpuReplayExecutor<'a> {
    /// Creates an executor over a device.
    pub fn new(gpu: &'a Arc<GpuSim>) -> Self {
        Self { gpu }
    }
}

impl PlanExecutor for GpuReplayExecutor<'_> {
    fn execute(&self, plan: &ExecPlan) {
        debug_assert!(
            !self.gpu.capturing_on_current_thread(),
            "replaying into this thread's open capture would re-record the plan"
        );
        let mem = plan.mem();
        self.gpu
            .record_plan_memory(mem.peak_device_bytes, mem.allocations);
        let binding = plan.slot_binding();
        for step in plan.steps() {
            match step {
                PlanStep::Launch { stream, desc } => {
                    let mut desc = desc.clone();
                    if !binding.is_empty() {
                        for (buf, _) in desc.reads.iter_mut().chain(desc.writes.iter_mut()) {
                            if let Some(&slot) = binding.get(buf) {
                                *buf = fides_gpu_sim::BufferId(SLOT_ID_BASE | slot);
                            }
                        }
                    }
                    self.gpu.launch(*stream, desc, || {});
                }
                PlanStep::Fence { signals, waiters } => {
                    self.gpu.fence(signals, waiters);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{ExecGraph, PlanConfig, Planner};
    use fides_gpu_sim::{BufferId, DeviceSpec, ExecMode, GraphEvent, KernelDesc, KernelKind};

    #[test]
    fn replay_advances_ledger_once_per_planned_launch() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let events = vec![
            GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::Elementwise)
                    .read(BufferId(1), 4096)
                    .ops(100),
            },
            GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::Elementwise)
                    .read(BufferId(2), 4096)
                    .ops(100),
            },
            GraphEvent::Fence {
                signals: vec![0],
                waiters: vec![1],
            },
        ];
        let plan = Planner::new(PlanConfig::default()).plan(&ExecGraph::from_events(events));
        assert_eq!(plan.launch_count(), 1, "two elementwise kernels fused");
        let t0 = gpu.sync();
        GpuReplayExecutor::new(&gpu).execute(&plan);
        let stats = gpu.stats();
        assert_eq!(stats.kernel_launches, 1);
        assert_eq!(stats.int32_ops, 200, "op totals preserved");
        assert!(gpu.sync() > t0, "replay advanced simulated time");
    }

    /// Satellite for ROADMAP item (b): liveness slot reuse must show up as
    /// residency in the L2 model. Three LR-style iterations each allocate
    /// fresh 32 MB intermediates (as recording does); slot-canonical replay
    /// lets the iterations time-share L2 lines instead of dragging three
    /// generations of buffer ids through the 72 MB cache.
    #[test]
    fn slot_binding_lowers_modeled_dram_traffic_on_lr_iterations() {
        let mb = 32u64 << 20;
        let fence_all = || GraphEvent::Fence {
            signals: vec![0, 1, 2, 3],
            waiters: vec![0, 1, 2, 3],
        };
        let mut events = Vec::new();
        for it in 1..=3u64 {
            let base = 1000 * it;
            // Partial products: shared weights in, fresh 32 MB partials out.
            for s in 0..4u64 {
                events.push(GraphEvent::Launch {
                    stream: s as usize,
                    desc: KernelDesc::new(KernelKind::Elementwise)
                        .read(BufferId(10 + s), mb)
                        .write(BufferId(base + s), mb)
                        .ops(1000),
                });
            }
            events.push(fence_all());
            // Reduction over the four partials.
            let mut red = KernelDesc::new(KernelKind::BaseConv)
                .write(BufferId(base + 90), mb)
                .ops(1000);
            for s in 0..4u64 {
                red = red.read(BufferId(base + s), mb);
            }
            events.push(GraphEvent::Launch {
                stream: 0,
                desc: red,
            });
            events.push(fence_all());
            // Elementwise tail producing this iteration's model update.
            events.push(GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::SwitchModulus)
                    .read(BufferId(base + 90), mb)
                    .write(BufferId(base + 91), mb)
                    .ops(1000),
            });
            events.push(fence_all());
        }
        let plan = Planner::new(PlanConfig::default()).plan(&ExecGraph::from_events(events));
        assert!(
            !plan.slot_binding().is_empty(),
            "scheduler v2 plans carry a slot binding"
        );
        assert!(
            plan.mem().reuse_rate() > 0.0,
            "iterations must actually share slots for this shape to test anything"
        );

        let dram_bytes = |p: &ExecPlan| {
            let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
            GpuReplayExecutor::new(&gpu).execute(p);
            gpu.sync();
            gpu.stats().dram_read_bytes
        };
        let pooled = dram_bytes(&plan);
        let mut unbound = plan.clone();
        unbound.slots.clear();
        let verbatim = dram_bytes(&unbound);
        assert!(
            pooled < verbatim,
            "slot residency must lower modeled DRAM traffic: pooled={pooled} verbatim={verbatim}"
        );
    }
}
