//! Plan executors: where a scheduled plan actually runs.

use std::sync::Arc;

use fides_gpu_sim::GpuSim;

use super::plan::{ExecPlan, PlanStep};

/// An execution substrate for [`ExecPlan`]s.
///
/// The gpu-sim backend replays plans onto the multi-stream timeline
/// ([`GpuReplayExecutor`]); a real CUDA backend would issue the same steps
/// as graph launches, and a multi-GPU backend would partition the plan
/// across devices before executing each shard.
pub trait PlanExecutor {
    /// Runs every step of the plan in issue order.
    fn execute(&self, plan: &ExecPlan);
}

/// Replays a plan onto the simulated device: each launch advances the
/// timeline and ledger exactly as an eager launch would (bodies are empty —
/// the functional math already ran while recording), and each fence applies
/// the recorded cross-limb sync point.
#[derive(Debug)]
pub struct GpuReplayExecutor<'a> {
    gpu: &'a Arc<GpuSim>,
}

impl<'a> GpuReplayExecutor<'a> {
    /// Creates an executor over a device.
    pub fn new(gpu: &'a Arc<GpuSim>) -> Self {
        Self { gpu }
    }
}

impl PlanExecutor for GpuReplayExecutor<'_> {
    fn execute(&self, plan: &ExecPlan) {
        debug_assert!(
            !self.gpu.capturing_on_current_thread(),
            "replaying into this thread's open capture would re-record the plan"
        );
        let mem = plan.mem();
        self.gpu
            .record_plan_memory(mem.peak_device_bytes, mem.allocations);
        for step in plan.steps() {
            match step {
                PlanStep::Launch { stream, desc } => {
                    self.gpu.launch(*stream, desc.clone(), || {});
                }
                PlanStep::Fence { signals, waiters } => {
                    self.gpu.fence(signals, waiters);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{ExecGraph, PlanConfig, Planner};
    use fides_gpu_sim::{BufferId, DeviceSpec, ExecMode, GraphEvent, KernelDesc, KernelKind};

    #[test]
    fn replay_advances_ledger_once_per_planned_launch() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let events = vec![
            GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::Elementwise)
                    .read(BufferId(1), 4096)
                    .ops(100),
            },
            GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::Elementwise)
                    .read(BufferId(2), 4096)
                    .ops(100),
            },
            GraphEvent::Fence {
                signals: vec![0],
                waiters: vec![1],
            },
        ];
        let plan = Planner::new(PlanConfig::default()).plan(&ExecGraph::from_events(events));
        assert_eq!(plan.launch_count(), 1, "two elementwise kernels fused");
        let t0 = gpu.sync();
        GpuReplayExecutor::new(&gpu).execute(&plan);
        let stats = gpu.stats();
        assert_eq!(stats.kernel_launches, 1);
        assert_eq!(stats.int32_ops, 200, "op totals preserved");
        assert!(gpu.sync() > t0, "replay advanced simulated time");
    }
}
