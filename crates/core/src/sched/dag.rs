//! Scheduler v2: dependency-aware critical-path list scheduling.
//!
//! The v1 planner assigned streams by modulo remap of the *recorded* stream
//! index — whatever round-robin the recording happened to use is what
//! replays, so independent work that recorded onto the same stream
//! serializes and the device idles (BENCH_PR4 measured ~10% stream
//! occupancy on the serve workload). This module instead derives a true
//! dependency DAG from the recorded events and schedules it:
//!
//! 1. **Chain pre-fusion.** Consecutive same-recorded-stream
//!    elementwise-class launches within a barrier segment collapse into
//!    fused *units* first (the §III-F.5 fusion, unchanged), so scheduling
//!    never splits a profitable chain across streams.
//! 2. **Dependency edges.** Per-recorded-stream program order is always an
//!    edge (recorded intra-stream order is semantic — see the module-level
//!    invariant in [`sched`](crate::sched)). Across *barrier segments*,
//!    buffer conflicts (read-after-write, write-after-write,
//!    write-after-read) become precise edges: the recorded fence told us a
//!    cross-limb dependency exists, and the read/write sets tell us exactly
//!    which nodes it connects. Same-segment cross-stream accesses to one
//!    buffer are *not* ordered — they were concurrent in the recording
//!    (limb batches touch disjoint slices of one poly buffer).
//! 3. **Critical-path list scheduling.** Units are ranked by critical-path
//!    length (upward rank over a first-order cost model) and greedily
//!    placed, in rank order, on the stream where they can start earliest —
//!    with an affinity tie-break that keeps a recorded stream's chain
//!    together so emission-time fusion still applies.
//! 4. **Emission.** Launches are issued in *recorded* order (preserving
//!    the producer→consumer temporal locality the L2 residency model
//!    rewards), with chains flushing at the same positions the v1 planner
//!    would. A dependency whose endpoints landed on different streams
//!    becomes an event fence (`signals` → `waiters`); same-stream
//!    dependencies ride stream serialization for free. Co-located
//!    *alias-free* fusible chains merge (bounded by `max_fuse`), which is
//!    what fuses independent tenants' chains inside one serve batch
//!    without costing L2 residency refreshes.
//!
//! The result is a plan whose replay overlaps everything the recording
//! *allows* to overlap, instead of everything the round-robin happened to
//! separate. Results are bit-identical by construction: functional math
//! runs at record time, so the plan only ever changes simulated timing.

use std::collections::HashMap;

use fides_gpu_sim::{BufferId, KernelDesc};

use super::graph::{ExecGraph, GraphOp};
use super::plan::{merge, ExecPlan, PlanConfig, PlanStep, SchedStats};

/// One schedulable unit: a recorded kernel, possibly carrying a pre-fused
/// chain of same-stream elementwise followers.
pub(crate) struct Unit {
    pub(crate) desc: KernelDesc,
    pub(crate) rec_stream: usize,
    pub(crate) segment: usize,
    /// Recorded kernels absorbed into this unit (chain length ≥ 1).
    pub(crate) count: usize,
}

impl Unit {
    pub(crate) fn is_fusible(&self) -> bool {
        super::graph::fusible_kind(self.desc.kind)
    }
}

// The first-order cost model used to rank and place units (the real timing
// comes from the replay) lives in `PlanConfig::cost`, calibrated from the
// active `DeviceSpec` (`CostModel::from_spec`); the `CostModel::default()`
// literals preserve the historical hard-coded RTX 4090 figures.

/// Bytes `merge(into, next)` would dedup away: traffic on buffers the two
/// descriptors share. Zero for disjoint chains.
pub(crate) fn dedup_overlap_bytes(into: &KernelDesc, next: &KernelDesc) -> u64 {
    let touched = |buf: fides_gpu_sim::BufferId| {
        into.reads.iter().any(|&(b, _)| b == buf) || into.writes.iter().any(|&(b, _)| b == buf)
    };
    next.reads
        .iter()
        .chain(&next.writes)
        .filter(|&&(b, _)| touched(b))
        .map(|&(_, bytes)| bytes)
        .sum()
}

/// Stage 1: collapse same-recorded-stream elementwise chains into units
/// (identical fusion rule to the v1 planner, applied before scheduling so
/// chains are never split across streams). Returns the units in recorded
/// chain-head order — a topological order of every edge stage 2 can add —
/// plus, per barrier, the set of recorded streams it covers (barrier `k`
/// separates segment `k` from `k + 1`; emission uses the sets to flush
/// chains at the same positions the v1 planner would).
pub(crate) fn build_units(graph: &ExecGraph, cfg: &PlanConfig) -> (Vec<Unit>, Vec<Vec<usize>>) {
    let mut units: Vec<Unit> = Vec::new();
    let mut barriers: Vec<Vec<usize>> = Vec::new();
    // Open chain per recorded stream: index into `units`.
    let mut open: HashMap<usize, usize> = HashMap::new();
    for op in &graph.ops {
        match op {
            GraphOp::Kernel(node) => {
                if cfg.fuse_elementwise && node.is_fusible() {
                    if let Some(&idx) = open.get(&node.stream) {
                        debug_assert_eq!(
                            units[idx].segment, node.segment,
                            "open chain crossed a barrier"
                        );
                        if units[idx].count < cfg.max_fuse {
                            merge(&mut units[idx].desc, &node.desc);
                            units[idx].count += 1;
                            continue;
                        }
                        open.remove(&node.stream);
                    }
                    open.insert(node.stream, units.len());
                } else {
                    open.remove(&node.stream);
                }
                units.push(Unit {
                    desc: node.desc.clone(),
                    rec_stream: node.stream,
                    segment: node.segment,
                    count: 1,
                });
            }
            // Barriers close the chains of the streams they cover (they
            // end the segment); the ordering they encode becomes
            // cross-segment dependency edges in stage 2.
            GraphOp::Barrier { signals, waiters } => {
                open.clear();
                let mut set: Vec<usize> = signals.iter().chain(waiters).copied().collect();
                set.sort_unstable();
                set.dedup();
                barriers.push(set);
            }
        }
    }
    (units, barriers)
}

/// Per-buffer conflict-tracking state for edge construction.
///
/// Writers come in *generations*: a maximal set of same-segment writers
/// (concurrent limb batches writing disjoint slices of one poly buffer).
/// A cross-segment access must depend on **every** member of the newest
/// generation — tracking only a "last writer" would silently drop the
/// ordering a recorded fence imposed on the other batches. One previous
/// generation is kept for accesses that are concurrent with the current
/// one (anything older is covered transitively, because each current-
/// generation writer carries edges to the whole previous generation).
#[derive(Default)]
struct BufState {
    /// The newest write generation and its segment.
    writers_cur: Vec<usize>,
    writers_seg: usize,
    /// The complete generation before it (its segment always differs).
    writers_prev: Vec<usize>,
    /// Readers since `writers_cur` began, with their segments.
    readers_cur: Vec<(usize, usize)>,
    /// Readers of the previous generation's data.
    readers_prev: Vec<(usize, usize)>,
}

/// Stage 2: dependency edges. Returns `(preds, succs)` adjacency, with
/// every edge pointing from a lower to a higher unit index (unit order is
/// recorded order, so segments are nondecreasing along it).
pub(crate) fn build_edges(units: &[Unit]) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = units.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_on_stream: HashMap<usize, usize> = HashMap::new();
    let mut bufs: HashMap<BufferId, BufState> = HashMap::new();

    for (i, u) in units.iter().enumerate() {
        let mut p: Vec<usize> = Vec::new();
        // Recorded intra-stream program order is always preserved.
        if let Some(&prev) = last_on_stream.get(&u.rec_stream) {
            p.push(prev);
        }
        // Cross-segment conflicts only: same-segment cross-stream accesses
        // were concurrent in the recording (disjoint limb slices of one
        // poly buffer), and same-stream conflicts ride the program-order
        // edge transitively.
        let crossing = |other: usize, other_seg: usize| {
            other_seg != u.segment && units[other].rec_stream != u.rec_stream
        };
        for &(buf, _) in &u.desc.reads {
            let st = bufs.entry(buf).or_default();
            if !st.writers_cur.is_empty() && st.writers_seg != u.segment {
                // Read-after-write on the whole newest generation.
                p.extend(
                    st.writers_cur
                        .iter()
                        .copied()
                        .filter(|&w| crossing(w, st.writers_seg)),
                );
            } else {
                // Concurrent with (or preceding) the current generation:
                // the previous one is what this read is ordered after.
                let prev_seg = st.writers_prev.first().map(|&w| units[w].segment);
                if let Some(ps) = prev_seg {
                    p.extend(st.writers_prev.iter().copied().filter(|&w| crossing(w, ps)));
                }
            }
            st.readers_cur.push((i, u.segment));
        }
        for &(buf, _) in &u.desc.writes {
            let st = bufs.entry(buf).or_default();
            if st.writers_cur.is_empty() || st.writers_seg != u.segment {
                // A new generation begins: it is ordered after every
                // member of the one it supersedes (write-after-write) and
                // after everything that read that data (write-after-read).
                let old_writers = std::mem::take(&mut st.writers_cur);
                let old_seg = old_writers.first().map(|&w| units[w].segment);
                st.readers_prev = std::mem::take(&mut st.readers_cur);
                if let Some(os) = old_seg {
                    p.extend(old_writers.iter().copied().filter(|&w| crossing(w, os)));
                }
                st.writers_prev = old_writers;
                st.writers_seg = u.segment;
            }
            // Joining (or having just started) the current generation:
            // ordered after the previous generation and its readers.
            let prev_seg = st.writers_prev.first().map(|&w| units[w].segment);
            if let Some(ps) = prev_seg {
                p.extend(st.writers_prev.iter().copied().filter(|&w| crossing(w, ps)));
            }
            p.extend(
                st.readers_prev
                    .iter()
                    .filter(|&&(r, rseg)| r != i && crossing(r, rseg))
                    .map(|&(r, _)| r),
            );
            st.writers_cur.push(i);
        }
        p.retain(|&q| q != i);
        p.sort_unstable();
        p.dedup();
        for &q in &p {
            succs[q].push(i);
        }
        preds[i] = p;
        last_on_stream.insert(u.rec_stream, i);
    }
    (preds, succs)
}

/// A chain of fusible launches being grown on one *final* stream during
/// emission.
struct PendingChain {
    desc: KernelDesc,
    count: usize,
    members: Vec<usize>,
}

/// The emission state for one final stream: issued-launch count plus the
/// chains still open on it (FIFO by open position). Several chains — from
/// different recorded streams the scheduler co-located — can be open at
/// once, so an unrelated launch never forces a foreign chain to flush
/// early (which would scramble the issue order the L2 residency model
/// sees relative to the v1 planner).
#[derive(Default)]
struct StreamEmit {
    launched: usize,
    open: Vec<PendingChain>,
}

/// Scheduler v2 entry point: plans `graph` with dependency-aware list
/// scheduling (see the module docs for the pipeline).
pub(crate) fn plan_dag(graph: &ExecGraph, cfg: &PlanConfig) -> ExecPlan {
    let (units, barriers) = build_units(graph, cfg);
    let n = units.len();
    let recorded = graph.kernel_count() as u64;
    if n == 0 {
        return ExecPlan {
            steps: Vec::new(),
            stats: SchedStats {
                graphs: 1,
                ..SchedStats::default()
            },
            mem: Default::default(),
            slots: Default::default(),
        };
    }
    let (preds, succs) = build_edges(&units);

    // Upward rank (critical-path length to a sink). Unit index order is
    // topological, so one reverse sweep suffices.
    let cm = cfg.cost;
    let cost: Vec<f64> = units.iter().map(|u| cm.unit_cost(&u.desc)).collect();
    let mut rank = vec![0.0f64; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&s| rank[s]).fold(0.0f64, f64::max);
        rank[i] = cost[i] + tail;
    }

    // Greedy placement in descending rank order (a topological order:
    // every predecessor outranks its successors because costs are
    // positive). Each unit goes to the stream where it can start earliest
    // — where "earliest" includes the **host submission clock**: the host
    // pays `launch_us` per launch serially, so a stream that frees up
    // within the submission interval is as good as an idle one. This is
    // what keeps launch-bound work packed on few streams (where its
    // elementwise chains stay adjacent and fuse) and spreads work across
    // streams only when kernels are long enough that spreading actually
    // buys makespan. Ties prefer the stream the unit's recorded stream
    // last landed on (chains stay adjacent for emission fusion), then the
    // lowest index.
    let streams = cfg.num_streams.max(1);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank[b].total_cmp(&rank[a]).then(a.cmp(&b)));
    let mut stream_free = vec![0.0f64; streams];
    let mut finish = vec![0.0f64; n];
    let mut assigned = vec![0usize; n];
    let mut affinity: HashMap<usize, usize> = HashMap::new();
    let mut host = 0.0f64;
    for &u in &order {
        let ready = preds[u].iter().map(|&p| finish[p]).fold(host, f64::max);
        let earliest = |s: usize| stream_free[s].max(ready);
        let min_start = (0..streams).map(earliest).fold(f64::INFINITY, f64::min);
        let chosen = match affinity.get(&units[u].rec_stream) {
            Some(&h) if earliest(h) == min_start => h,
            _ => (0..streams)
                .find(|&s| earliest(s) == min_start)
                .expect("some stream attains the minimum"),
        };
        finish[u] = min_start + cost[u];
        stream_free[chosen] = finish[u];
        assigned[u] = chosen;
        affinity.insert(units[u].rec_stream, chosen);
        host += cm.launch_us;
    }

    // Emission in *recorded* order (unit index order — every edge points
    // from a lower to a higher index, so predecessors are always issued
    // first). Recorded order preserves the producer→consumer temporal
    // locality the L2 residency model rewards; the overlap win comes from
    // the stream *assignment* and the precise fences, not from
    // reshuffling issue order, because the host launch clock serializes
    // submissions anyway. Several chains can stay open per final stream,
    // a chain flushes exactly where v1 would flush it (a recorded barrier
    // covering its streams, a successor of its members, or a dependent
    // fence), and co-located alias-free chains — different tenants'
    // requests — merge.
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut emit: Vec<StreamEmit> = (0..streams).map(|_| StreamEmit::default()).collect();
    // sync_mark[w][s]: launches on `s` that stream `w` already waits for.
    let mut sync_mark: Vec<Vec<usize>> = vec![vec![0; streams]; streams];
    // Launch slot (stream, index-on-stream) per unit once flushed.
    let mut launch_of: Vec<Option<(usize, usize)>> = vec![None; n];

    fn flush_chain(
        s: usize,
        chain_idx: usize,
        emit: &mut [StreamEmit],
        steps: &mut Vec<PlanStep>,
        launch_of: &mut [Option<(usize, usize)>],
    ) {
        let chain = emit[s].open.remove(chain_idx);
        for &m in &chain.members {
            launch_of[m] = Some((s, emit[s].launched));
        }
        emit[s].launched += 1;
        steps.push(PlanStep::Launch {
            stream: s,
            desc: chain.desc,
        });
    }

    let mut cur_seg = 0usize;
    for u in 0..n {
        let s = assigned[u];
        // Recorded barriers crossed since the last unit flush exactly the
        // chains whose recorded streams they cover — the same positions
        // the v1 planner flushes at, so a single-graph issue order is
        // unchanged while another request's (uncovered) tail chain stays
        // open for cross-request merging.
        while cur_seg < units[u].segment {
            let covered = &barriers[cur_seg];
            for t in 0..streams {
                let mut i = 0;
                while i < emit[t].open.len() {
                    let in_set = emit[t].open[i]
                        .members
                        .iter()
                        .any(|&m| covered.binary_search(&units[m].rec_stream).is_ok());
                    if in_set {
                        flush_chain(t, i, &mut emit, &mut steps, &mut launch_of);
                    } else {
                        i += 1;
                    }
                }
            }
            cur_seg += 1;
        }
        // Dependencies: a predecessor still sitting in an open chain is
        // flushed (alone — unrelated chains stay open); one that landed on
        // another stream is then covered by an event fence. Fences
        // **coalesce**: all of this unit's cross-stream predecessors share
        // one fence (`signals` = every producer stream, `waiters` = this
        // stream), and when the immediately preceding step is already a
        // fence with the same waiter — no launch intervened, so the wait
        // positions are identical — the new signals merge into it instead
        // of emitting another step. Each replayed fence costs a host-side
        // event round-trip, so fewer fences is strictly cheaper; the
        // ordering is unchanged because a coalesced fence still makes `s`
        // wait for every signalled stream's work issued so far.
        let mut fence_signals: Vec<usize> = Vec::new();
        for &p in &preds[u] {
            let t = assigned[p];
            if launch_of[p].is_none() {
                let idx = emit[t]
                    .open
                    .iter()
                    .position(|c| c.members.contains(&p))
                    .expect("unissued predecessor is in an open chain");
                flush_chain(t, idx, &mut emit, &mut steps, &mut launch_of);
            }
            if t == s {
                continue; // stream serialization orders it
            }
            let (_, pidx) = launch_of[p].expect("predecessor flushed");
            if sync_mark[s][t] <= pidx && !fence_signals.contains(&t) {
                fence_signals.push(t);
            }
        }
        if !fence_signals.is_empty() {
            fence_signals.sort_unstable();
            for &t in &fence_signals {
                sync_mark[s][t] = emit[t].launched;
            }
            match steps.last_mut() {
                Some(PlanStep::Fence { signals, waiters }) if waiters.as_slice() == [s] => {
                    signals.extend(fence_signals);
                    signals.sort_unstable();
                    signals.dedup();
                }
                _ => steps.push(PlanStep::Fence {
                    signals: fence_signals,
                    waiters: vec![s],
                }),
            }
        }
        if cfg.fuse_elementwise && units[u].is_fusible() {
            // Merge into the oldest viable open chain on this stream.
            // Dependency safety is already established: every predecessor
            // of `u` is issued by now, so launching `u` at any open
            // chain's (later) flush position cannot run it too early. A
            // merge always saves one host submission (`launch_us`), but
            // when the two sides *alias*, the merged descriptor dedups the
            // re-touched bytes — and every deduped byte is an L2 touch
            // that no longer refreshes the buffer's residency, which at
            // out-of-cache scale turns into later DRAM misses. So a merge
            // must be (near-)alias-free: the deduped traffic may cost at
            // most the one launch it saves. Disjoint chains — different
            // tenants, different limb ranges — merge freely; a chain
            // re-touching its own working set does not. (Within a segment
            // stage 1 already applied the §III-F.5 fusion rule
            // unconditionally, matching v1.)
            let target = emit[s].open.iter().position(|c| {
                c.count + units[u].count <= cfg.max_fuse
                    && (dedup_overlap_bytes(&c.desc, &units[u].desc) as f64 / cm.bytes_per_us)
                        <= cm.launch_us
            });
            if let Some(idx) = target {
                let chain = &mut emit[s].open[idx];
                merge(&mut chain.desc, &units[u].desc);
                chain.count += units[u].count;
                chain.members.push(u);
            } else {
                emit[s].open.push(PendingChain {
                    desc: units[u].desc.clone(),
                    count: units[u].count,
                    members: vec![u],
                });
            }
        } else {
            launch_of[u] = Some((s, emit[s].launched));
            emit[s].launched += 1;
            steps.push(PlanStep::Launch {
                stream: s,
                desc: units[u].desc.clone(),
            });
        }
    }
    for s in 0..streams {
        while !emit[s].open.is_empty() {
            flush_chain(s, 0, &mut emit, &mut steps, &mut launch_of);
        }
    }

    let planned = steps
        .iter()
        .filter(|s| matches!(s, PlanStep::Launch { .. }))
        .count() as u64;
    ExecPlan {
        steps,
        stats: SchedStats {
            graphs: 1,
            recorded_kernels: recorded,
            planned_launches: planned,
            fused_kernels: recorded - planned,
            ..SchedStats::default()
        },
        mem: Default::default(),
        slots: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{GraphEvent, KernelKind};

    fn cfg(streams: usize, fuse: bool) -> PlanConfig {
        PlanConfig {
            fuse_elementwise: fuse,
            num_streams: streams,
            max_fuse: 8,
            dep_schedule: true,
            ..PlanConfig::default()
        }
    }

    fn launch(stream: usize, kind: KernelKind, reads: &[u64], writes: &[u64]) -> GraphEvent {
        let mut desc = KernelDesc::new(kind).ops(1000);
        for &b in reads {
            desc = desc.read(BufferId(b), 1 << 20);
        }
        for &b in writes {
            desc = desc.write(BufferId(b), 1 << 20);
        }
        GraphEvent::Launch { stream, desc }
    }

    fn fence_all(streams: usize) -> GraphEvent {
        let all: Vec<usize> = (0..streams).collect();
        GraphEvent::Fence {
            signals: all.clone(),
            waiters: all,
        }
    }

    fn launch_streams(plan: &ExecPlan) -> Vec<usize> {
        plan.steps()
            .iter()
            .filter_map(|s| match s {
                PlanStep::Launch { stream, .. } => Some(*stream),
                _ => None,
            })
            .collect()
    }

    /// Replays the plan symbolically and asserts that for every
    /// cross-stream recorded dependency (pred before succ in `ordered`),
    /// the plan orders them by stream or by an interleaved fence.
    fn assert_ordered(plan: &ExecPlan, before: BufferId, after: BufferId) {
        // Position of the launch touching each buffer.
        let mut pos_before = None;
        let mut pos_after = None;
        let mut stream_before = 0;
        let mut stream_after = 0;
        for (i, step) in plan.steps().iter().enumerate() {
            if let PlanStep::Launch { stream, desc } = step {
                let touches = |b: BufferId| {
                    desc.reads.iter().any(|&(x, _)| x == b)
                        || desc.writes.iter().any(|&(x, _)| x == b)
                };
                if touches(before) && pos_before.is_none() {
                    pos_before = Some(i);
                    stream_before = *stream;
                }
                if touches(after) {
                    pos_after = Some(i);
                    stream_after = *stream;
                }
            }
        }
        let (pb, pa) = (pos_before.unwrap(), pos_after.unwrap());
        assert!(pb < pa, "dependency issued out of order");
        if stream_before != stream_after {
            let fenced = plan.steps()[pb..pa].iter().any(|s| {
                matches!(s, PlanStep::Fence { signals, waiters }
                    if signals.contains(&stream_before) && waiters.contains(&stream_after))
            });
            assert!(fenced, "cross-stream dependency lacks a fence");
        }
    }

    #[test]
    fn independent_streams_spread_over_device() {
        // Four independent recorded streams, two device streams: list
        // scheduling balances them without fences.
        let events = vec![
            launch(0, KernelKind::NttPhase1, &[1], &[1]),
            launch(1, KernelKind::NttPhase1, &[2], &[2]),
            launch(2, KernelKind::NttPhase1, &[3], &[3]),
            launch(3, KernelKind::NttPhase1, &[4], &[4]),
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(2, true));
        let streams = launch_streams(&plan);
        assert_eq!(streams.len(), 4);
        assert_eq!(streams.iter().filter(|&&s| s == 0).count(), 2);
        assert_eq!(streams.iter().filter(|&&s| s == 1).count(), 2);
        assert!(
            !plan
                .steps()
                .iter()
                .any(|s| matches!(s, PlanStep::Fence { .. })),
            "independent work needs no fences"
        );
    }

    #[test]
    fn cross_segment_raw_dependency_is_fenced() {
        // Writer on recorded stream 0, barrier, reader on recorded stream
        // 1. Whatever streams they land on, the plan must order them.
        let events = vec![
            launch(0, KernelKind::NttPhase1, &[], &[10]),
            fence_all(2),
            launch(1, KernelKind::NttPhase1, &[10], &[11]),
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(10), BufferId(11));
    }

    #[test]
    fn fence_between_writes_to_same_buffer_is_never_reordered() {
        // The barrier-handling invariant (ISSUE 5 satellite): two writes
        // to one buffer separated by a recorded fence must replay in
        // recorded order — list scheduling may not swap or overlap them.
        // The second write also reads a distinct marker buffer so the two
        // launches are distinguishable in the plan.
        let events = vec![
            launch(0, KernelKind::NttPhase1, &[20], &[15]),
            fence_all(4),
            launch(2, KernelKind::NttPhase2, &[21], &[15]),
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(20), BufferId(21));
    }

    #[test]
    fn fence_orders_reader_after_every_concurrent_writer() {
        // Two concurrent same-segment writers (limb batches writing
        // disjoint slices of one poly buffer), a fence, then a reader:
        // the reader must be ordered after *both* writers — tracking only
        // the last writer would drop the first dependency. Each writer
        // reads a distinct marker buffer so the launches are
        // distinguishable; big kernels force the writers onto different
        // streams than the reader.
        let big = |stream: usize, marker: u64, rw: &[u64]| GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(marker), 32 << 20)
                .write(BufferId(rw[0]), 32 << 20)
                .ops(1000),
        };
        let events = vec![
            big(0, 40, &[15]),
            big(1, 41, &[15]),
            fence_all(4),
            GraphEvent::Launch {
                stream: 2,
                desc: KernelDesc::new(KernelKind::NttPhase2)
                    .read(BufferId(15), 32 << 20)
                    .read(BufferId(42), 32 << 20)
                    .ops(1000),
            },
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(40), BufferId(42));
        assert_ordered(&plan, BufferId(41), BufferId(42));
    }

    #[test]
    fn fence_orders_writer_after_every_concurrent_reader() {
        // The write-after-read mirror: two concurrent readers, a fence,
        // then a writer — the writer depends on both readers.
        let rd = |stream: usize, marker: u64| GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(marker), 32 << 20)
                .read(BufferId(16), 32 << 20)
                .ops(1000),
        };
        let events = vec![
            rd(0, 50),
            rd(1, 51),
            fence_all(4),
            GraphEvent::Launch {
                stream: 2,
                desc: KernelDesc::new(KernelKind::NttPhase2)
                    .read(BufferId(52), 32 << 20)
                    .write(BufferId(16), 32 << 20)
                    .ops(1000),
            },
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(50), BufferId(52));
        assert_ordered(&plan, BufferId(51), BufferId(52));
    }

    #[test]
    fn reader_concurrent_with_new_writers_still_orders_after_old_generation() {
        // Writer generation 1 (seg 0), fence, then generation 2 plus a
        // reader concurrent with it (seg 1): the reader has no edge to
        // the concurrent writers, but must still order after generation
        // 1 — through `writers_prev`, not transitivity.
        let big = |stream: usize, marker: u64, write: bool| {
            let mut desc = KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(marker), 32 << 20)
                .ops(1000);
            desc = if write {
                desc.write(BufferId(17), 32 << 20)
            } else {
                desc.read(BufferId(17), 32 << 20)
            };
            GraphEvent::Launch { stream, desc }
        };
        let events = vec![
            big(0, 60, true),
            fence_all(4),
            big(1, 61, true),
            big(2, 62, false),
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(60), BufferId(62));
    }

    #[test]
    fn same_segment_shared_buffer_stays_concurrent() {
        // Two limb batches of one op write disjoint slices of the same
        // poly buffer from different recorded streams, with no fence: the
        // recording had them concurrent, and scheduler v2 must keep them
        // concurrent (no fence between them). The kernels are large
        // enough (32 MB ≫ the host submission interval) that the
        // placement chooses to overlap rather than pack.
        let big = |stream: usize| GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .write(BufferId(30), 32 << 20)
                .ops(1000),
        };
        let events = vec![big(0), big(1)];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_eq!(plan.launch_count(), 2);
        assert!(
            !plan
                .steps()
                .iter()
                .any(|s| matches!(s, PlanStep::Fence { .. })),
            "same-segment disjoint-slice writes must not serialize"
        );
        let streams = launch_streams(&plan);
        assert_ne!(streams[0], streams[1], "independent batches overlap");
    }

    #[test]
    fn launch_bound_work_packs_instead_of_spreading() {
        // Tiny kernels (at the latency floor, below the host submission
        // interval) gain nothing from spreading: the host cannot feed a
        // second stream fast enough. The placement packs them — keeping
        // chains adjacent for fusion — instead of scattering them across
        // idle streams.
        let events: Vec<GraphEvent> = (0..6)
            .map(|i| GraphEvent::Launch {
                stream: i,
                desc: KernelDesc::new(KernelKind::NttPhase1)
                    .read(BufferId(100 + i as u64), 1024)
                    .ops(10),
            })
            .collect();
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        let streams = launch_streams(&plan);
        assert!(
            streams.iter().all(|&s| s == streams[0]),
            "floor-bound independent kernels should pack: {streams:?}"
        );
    }

    #[test]
    fn chains_pre_fuse_before_scheduling() {
        let ew = |stream: usize, buf: u64| launch(stream, KernelKind::Elementwise, &[buf], &[buf]);
        let events = vec![ew(0, 1), ew(0, 2), ew(1, 3)];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_eq!(plan.launch_count(), 2, "stream-0 chain fused");
        assert_eq!(plan.stats().fused_kernels, 1);
        assert_eq!(plan.stats().recorded_kernels, 3);
    }

    #[test]
    fn emission_fuses_independent_chains_landing_on_one_stream() {
        // Two independent recorded streams of elementwise work, one device
        // stream: after placement they are adjacent on the same stream and
        // merge (the cross-tenant fusion path of the serve batcher).
        let ew = |stream: usize, buf: u64| launch(stream, KernelKind::Elementwise, &[buf], &[buf]);
        let events = vec![ew(0, 1), ew(7, 2)];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(1, true));
        assert_eq!(
            plan.launch_count(),
            1,
            "independent chains merge on one stream"
        );
        assert_eq!(plan.stats().fused_kernels, 1);
    }

    #[test]
    fn fusion_off_emits_every_unit() {
        let ew = |stream: usize, buf: u64| launch(stream, KernelKind::Elementwise, &[buf], &[buf]);
        let events = vec![ew(0, 1), ew(0, 2), ew(1, 3)];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, false));
        assert_eq!(plan.launch_count(), 3);
        assert_eq!(plan.stats().fused_kernels, 0);
    }

    #[test]
    fn plan_is_deterministic() {
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(launch(
                (i % 6) as usize,
                if i % 3 == 0 {
                    KernelKind::NttPhase1
                } else {
                    KernelKind::Elementwise
                },
                &[i % 7],
                &[i % 5 + 100],
            ));
            if i % 11 == 10 {
                events.push(fence_all(6));
            }
        }
        let g = ExecGraph::from_events(events);
        let a = plan_dag(&g, &cfg(4, true));
        let b = plan_dag(&g, &cfg(4, true));
        assert_eq!(a.launch_count(), b.launch_count());
        let streams_a = launch_streams(&a);
        let streams_b = launch_streams(&b);
        assert_eq!(
            streams_a, streams_b,
            "stream assignment must be deterministic"
        );
    }

    fn fence_count(plan: &ExecPlan) -> usize {
        plan.steps()
            .iter()
            .filter(|s| matches!(s, PlanStep::Fence { .. }))
            .count()
    }

    /// Per-edge fence count: what un-coalesced emission (one fence per
    /// cross-stream signal/waiter pair) would have issued.
    fn fence_pairs(plan: &ExecPlan) -> usize {
        plan.steps()
            .iter()
            .filter_map(|s| match s {
                PlanStep::Fence { signals, waiters } => Some(signals.len() * waiters.len()),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn multi_predecessor_fences_coalesce_into_one() {
        // Three concurrent writers on different device streams (big
        // kernels spread), a recorded barrier, then a reader depending on
        // all three. The reader lands on one writer's stream (serialized
        // for free) and its remaining cross-stream waits coalesce into a
        // **single** fence carrying both signal streams.
        let big = |stream: usize, marker: u64, wbuf: u64| GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(marker), 32 << 20)
                .write(BufferId(wbuf), 32 << 20)
                .ops(1000),
        };
        let events = vec![
            big(0, 70, 25),
            big(1, 71, 26),
            big(2, 72, 27),
            fence_all(4),
            GraphEvent::Launch {
                stream: 3,
                desc: KernelDesc::new(KernelKind::NttPhase2)
                    .read(BufferId(25), 32 << 20)
                    .read(BufferId(26), 32 << 20)
                    .read(BufferId(27), 32 << 20)
                    .read(BufferId(73), 32 << 20)
                    .ops(1000),
            },
        ];
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        assert_ordered(&plan, BufferId(70), BufferId(73));
        assert_ordered(&plan, BufferId(71), BufferId(73));
        assert_ordered(&plan, BufferId(72), BufferId(73));
        assert_eq!(fence_count(&plan), 1, "all waits share one fence");
        assert!(
            fence_pairs(&plan) >= 2,
            "the fence carries every cross-stream signal"
        );
    }

    #[test]
    fn coalescing_beats_per_edge_fences_on_lr_iteration_shape() {
        // The LR-iteration shape: per-limb-batch partial products on
        // several streams, a recorded barrier, a reduction reading every
        // partial, another barrier, then the elementwise sigmoid tail.
        // Coalescing must emit strictly fewer fence steps than the
        // per-edge count (one per signal×waiter pair) while every
        // dependency stays ordered.
        let part = |stream: usize, buf: u64| GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(200 + buf), 32 << 20)
                .write(BufferId(buf), 32 << 20)
                .ops(1000),
        };
        let mut events: Vec<GraphEvent> = (0..4).map(|i| part(i as usize, 80 + i)).collect();
        events.push(fence_all(4));
        events.push(GraphEvent::Launch {
            stream: 0,
            desc: KernelDesc::new(KernelKind::NttPhase2)
                .read(BufferId(80), 32 << 20)
                .read(BufferId(81), 32 << 20)
                .read(BufferId(82), 32 << 20)
                .read(BufferId(83), 32 << 20)
                // Unique marker so `assert_ordered` resolves the reduction
                // (buffer 90 is touched by the tail too).
                .read(BufferId(301), 32 << 20)
                .write(BufferId(90), 32 << 20)
                .ops(1000),
        });
        events.push(fence_all(4));
        events.push(launch(1, KernelKind::Elementwise, &[90], &[91]));
        let plan = plan_dag(&ExecGraph::from_events(events), &cfg(4, true));
        for b in 80..84 {
            assert_ordered(&plan, BufferId(200 + b), BufferId(301));
        }
        assert_ordered(&plan, BufferId(301), BufferId(91));
        let (fences, pairs) = (fence_count(&plan), fence_pairs(&plan));
        assert!(pairs > 0, "reduction must cross streams");
        assert!(
            fences < pairs,
            "coalescing must beat per-edge fences: {fences} vs {pairs}"
        );
    }

    #[test]
    fn empty_graph_plans_empty() {
        let plan = plan_dag(&ExecGraph::from_events(Vec::new()), &cfg(4, true));
        assert_eq!(plan.launch_count(), 0);
        assert_eq!(plan.stats().graphs, 1);
    }
}
