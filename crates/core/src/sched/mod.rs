//! The stream-graph execution engine: lazy kernel graphs, a fusion/stream
//! planning pass, and pluggable executors.
//!
//! # Layering (paper Fig. 2 / §III-F)
//!
//! Before this module, every `RNSPoly` method fired its kernels eagerly: one
//! [`GpuSim::launch`](fides_gpu_sim::GpuSim::launch) per limb batch, timed on
//! the spot. The paper's performance story, however, is about what happens
//! *between* kernels — launch overhead amortized by limb batching (§III-F.1),
//! elementwise chains collapsed into single launches (§III-F.5), and batches
//! spread round-robin over streams so the device never drains. Those are
//! scheduling decisions, so this module makes the schedule a first-class
//! value:
//!
//! ```text
//!   engine (api)          Ciphertext ops (ops/*, poly.rs)
//!        │                        │   record, don't time
//!        ▼                        ▼
//!   [`ExecGraph`]   — kernel nodes + fences, as captured
//!        │  planning pass ([`Planner`])
//!        ▼
//!   [`ExecPlan`]    — fused launches, streams reassigned
//!        │  pluggable executor ([`PlanExecutor`])
//!        ▼
//!   [`GpuReplayExecutor`] → multi-stream timeline (gpu-sim backend)
//!   (the CPU reference backend executes limb batches on a worker pool
//!    instead — see [`cpu_ref`](crate::cpu_ref))
//! ```
//!
//! **Recording.** Ops run inside
//! [`CkksContext::scheduled`](crate::CkksContext::scheduled), which opens a
//! capture region on the
//! simulated device: each would-be launch becomes a [`KernelNode`] carrying
//! its stream, limb-batch descriptor and kind; each
//! `sync_batch_streams` becomes a barrier, splitting the graph into
//! segments at the cross-limb sync points (rescale's SwitchModulus handoff,
//! base conversion in key switching). Functional math still runs eagerly —
//! CKKS server kernels are data-oblivious, so the *results* never depend on
//! the schedule, only the timing does.
//!
//! **Planning.** [`Planner`] runs one of two passes. **Scheduler v2** (the
//! default, [`CkksParameters::sched_v2`](crate::CkksParameters)) derives a
//! dependency DAG from the recording — per-recorded-stream program order,
//! plus precise buffer-conflict edges across barrier segments — and
//! critical-path list-schedules it onto the configured stream count
//! ([`CkksParameters::num_streams`](crate::CkksParameters)), so
//! independent work (other tenants' requests, independent limb chains)
//! genuinely overlaps; see `dag.rs`'s docs for the pipeline. The **v1
//! pass** (`sched_v2` off, the A/B baseline) instead remaps recorded
//! streams modulo the stream count. Both passes apply the `elementwise`
//! fusion knob ([`FusionConfig::elementwise`](crate::FusionConfig)):
//! consecutive same-stream elementwise-class launches (elementwise
//! arithmetic, fills, modulus switches, automorphism pre-permutes) within a
//! segment fuse into single launches — the graph-level generalization of
//! the paper's §III-F.5 kernel fusions — and v2 additionally merges
//! independent chains that land adjacently on one final stream. Fused
//! launches keep the exact byte and op totals of their constituents; only
//! the per-launch overheads (`kernel_launch_us`, the minimum-kernel floor)
//! amortize, which is precisely the effect the paper measures.
//!
//! **Reordering invariant.** Whatever pass runs, the plan preserves:
//! (1) *per-recorded-stream program order* — two launches recorded on the
//! same stream replay in recorded order, always; and (2) *barrier
//! ordering over shared buffers* — if a recorded fence separates two
//! accesses to the same buffer (e.g. two writes, or rescale's cross-limb
//! write→read handoff), the plan orders them, by stream serialization or
//! by an emitted fence. What a pass **may** reorder is exactly the rest:
//! launches on *different* recorded streams with no fence-separated buffer
//! conflict were concurrent in the recording (limb batches touch disjoint
//! slices of one poly buffer), and scheduler v2 exploits that freedom
//! where v1 froze the recorded round-robin. Results never depend on any of
//! this: functional math runs at record time and only timing replays
//! (`dag::fence_between_writes_to_same_buffer_is_never_reordered` pins the
//! barrier half of the invariant).
//!
//! **Plan caching.** Planning itself disappears in steady state: a
//! structural [`fingerprint`] (descriptors, streams, barrier shapes and
//! the buffer *aliasing pattern* — not buffer identities — plus the plan
//! config) keys a bounded-LRU [`PlanCache`] in
//! [`CkksContext`](crate::CkksContext) and the serve layer's `Server`.
//! Repeated `eval_scope` bodies and steady-state serve ticks hit the
//! cache and replay a rebound copy of the cached [`ExecPlan`] with zero
//! planning work; changing the graph shape, `FusionConfig`, or stream
//! count misses. Hit/miss counters surface in
//! [`SchedStats`], [`SimStats`](fides_gpu_sim::SimStats) and the serve
//! layer's `ServeStats`. When several *independent* graphs miss at once
//! (the serve layer's per-device batch shards), [`plan_parallel`] fans
//! the planning passes out over a bounded rayon pool — `Planner::plan`
//! is a pure function of `(config, graph)`, so the plans are identical
//! to the sequential ones at every worker count, and each pass's wall
//! microseconds come back for the owner's planning-latency ledger
//! ([`PlanCache::note_plan_us`]).
//!
//! **Memory planning.** A liveness pass (`mem.rs`) colors buffer lifetimes
//! onto reusable pool slots (best-fit, stream-ordered-allocator style) and
//! records the pooled high-water mark and allocation count on the plan
//! ([`ExecPlan::mem`]) and the device ledger
//! ([`SimStats::peak_device_bytes`](fides_gpu_sim::SimStats)), making
//! device-memory footprint a gated A/B metric alongside launches and
//! simulated time.
//!
//! **Execution.** [`PlanExecutor::execute`] replays the planned launches
//! onto the device. The stock executor,
//! [`GpuReplayExecutor`], drives the multi-stream gpu-sim timeline: per-
//! stream occupancy is tracked by the simulator
//! ([`SimStats::stream_occupancy`](fides_gpu_sim::SimStats::stream_occupancy))
//! and fences are applied only at the recorded cross-limb sync points.
//!
//! **Distribution.** The same graph can be cut across a simulated
//! multi-device topology instead of replaying on one device: [`partition`]
//! weighs kernel nodes with a per-device [`CostModel`], prices dependency
//! edges as transfer time over the modeled interconnect
//! ([`Topology`]), seeds a cost-balanced contiguous split and refines it
//! with KL-style boundary sweeps, then emits per-device [`ExecPlan`]
//! shards interleaved with explicit [`DistStep::Transfer`] hops.
//! [`DistExecutor`] drives one [`GpuReplayExecutor`] per device of a
//! [`GpuCluster`](fides_gpu_sim::GpuCluster) off a shared host clock,
//! serializing cut-edge payloads on the link.
//!
//! # Knobs
//!
//! * stream count — `CkksParameters::with_num_streams` /
//!   `CkksEngineBuilder::num_streams`;
//! * graph fusion on/off — `FusionConfig::elementwise` (driven by the
//!   `ablate_fusion` benchmark);
//! * the whole graph path on/off — `CkksParameters::with_graph_exec`
//!   (off = the old eager per-op dispatch, kept for A/B timing).

mod cache;
mod dag;
mod exec;
mod graph;
mod mem;
mod partition;
mod persist;
mod plan;
mod topo;

pub use cache::{fingerprint, plan_parallel, PlanCache};
pub use exec::{GpuReplayExecutor, PlanExecutor};
pub use graph::{ExecGraph, GraphOp, KernelNode};
pub use mem::MemPlan;
pub use partition::{partition, DistExecutor, DistPlan, DistStats, DistStep};
pub use persist::{decode_plan_entry, encode_plan_entry};
pub use plan::{ExecPlan, PlanConfig, PlanStep, Planner, SchedStats};
pub use topo::{CostModel, Topology};
