//! The stream-graph execution engine: lazy kernel graphs, a fusion/stream
//! planning pass, and pluggable executors.
//!
//! # Layering (paper Fig. 2 / §III-F)
//!
//! Before this module, every `RNSPoly` method fired its kernels eagerly: one
//! [`GpuSim::launch`](fides_gpu_sim::GpuSim::launch) per limb batch, timed on
//! the spot. The paper's performance story, however, is about what happens
//! *between* kernels — launch overhead amortized by limb batching (§III-F.1),
//! elementwise chains collapsed into single launches (§III-F.5), and batches
//! spread round-robin over streams so the device never drains. Those are
//! scheduling decisions, so this module makes the schedule a first-class
//! value:
//!
//! ```text
//!   engine (api)          Ciphertext ops (ops/*, poly.rs)
//!        │                        │   record, don't time
//!        ▼                        ▼
//!   [`ExecGraph`]   — kernel nodes + fences, as captured
//!        │  planning pass ([`Planner`])
//!        ▼
//!   [`ExecPlan`]    — fused launches, streams reassigned
//!        │  pluggable executor ([`PlanExecutor`])
//!        ▼
//!   [`GpuReplayExecutor`] → multi-stream timeline (gpu-sim backend)
//!   (the CPU reference backend executes limb batches on a worker pool
//!    instead — see [`cpu_ref`](crate::cpu_ref))
//! ```
//!
//! **Recording.** Ops run inside
//! [`CkksContext::scheduled`](crate::CkksContext::scheduled), which opens a
//! capture region on the
//! simulated device: each would-be launch becomes a [`KernelNode`] carrying
//! its stream, limb-batch descriptor and kind; each
//! `sync_batch_streams` becomes a barrier, splitting the graph into
//! segments at the cross-limb sync points (rescale's SwitchModulus handoff,
//! base conversion in key switching). Functional math still runs eagerly —
//! CKKS server kernels are data-oblivious, so the *results* never depend on
//! the schedule, only the timing does.
//!
//! **Planning.** [`Planner`] walks the graph once: it remaps streams onto
//! the configured stream count
//! ([`CkksParameters::num_streams`](crate::CkksParameters)) and, when the
//! `elementwise` fusion knob
//! ([`FusionConfig::elementwise`](crate::FusionConfig)) is on, fuses
//! consecutive same-stream elementwise-class launches (elementwise
//! arithmetic, fills, modulus switches, automorphism pre-permutes) within a
//! segment into single launches — the graph-level generalization of the
//! paper's §III-F.5 kernel fusions. Fused launches keep the exact byte and
//! op totals of their constituents; only the per-launch overheads
//! (`kernel_launch_us`, the minimum-kernel floor) amortize, which is
//! precisely the effect the paper measures.
//!
//! **Execution.** [`PlanExecutor::execute`] replays the planned launches
//! onto the device. The stock executor,
//! [`GpuReplayExecutor`], drives the multi-stream gpu-sim timeline: per-
//! stream occupancy is tracked by the simulator
//! ([`SimStats::stream_occupancy`](fides_gpu_sim::SimStats::stream_occupancy))
//! and fences are applied only at the recorded cross-limb sync points. A
//! future multi-GPU backend partitions the same graph instead of replaying
//! it on one device.
//!
//! # Knobs
//!
//! * stream count — `CkksParameters::with_num_streams` /
//!   `CkksEngineBuilder::num_streams`;
//! * graph fusion on/off — `FusionConfig::elementwise` (driven by the
//!   `ablate_fusion` benchmark);
//! * the whole graph path on/off — `CkksParameters::with_graph_exec`
//!   (off = the old eager per-op dispatch, kept for A/B timing).

mod exec;
mod graph;
mod plan;

pub use exec::{GpuReplayExecutor, PlanExecutor};
pub use graph::{ExecGraph, GraphOp, KernelNode};
pub use plan::{ExecPlan, PlanConfig, PlanStep, Planner, SchedStats};
