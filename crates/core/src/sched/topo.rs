//! Device topology and the scheduler's first-order cost model.
//!
//! Scheduling decisions — unit ranking, stream placement, graph
//! partitioning — need *estimates* of kernel service time and transfer
//! cost before anything executes. The single source of truth for real
//! timing stays the gpu-sim replay; this module only prices choices, and
//! it prices them from the **active device model** instead of hard-coded
//! RTX 4090 numbers, so cost estimates stay honest when the simulated
//! fleet is an A4500, a V100, or a heterogeneous mix.

use fides_gpu_sim::{DeviceSpec, InterconnectSpec, KernelDesc};

/// First-order per-device cost constants used to rank and place units.
///
/// `Copy` by design (all scalars): it rides inside
/// [`PlanConfig`](super::PlanConfig) without breaking the config's `Copy`,
/// and its raw bits feed the plan fingerprint so cached plans never
/// survive a device-model change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Host submission overhead per launch, µs.
    pub launch_us: f64,
    /// Kernel latency floor, µs.
    pub min_kernel_us: f64,
    /// Effective DRAM bandwidth, bytes per µs.
    pub bytes_per_us: f64,
    /// Effective int32 throughput, ops per µs.
    pub ops_per_us: f64,
}

impl Default for CostModel {
    /// The historical scheduler-v2 constants (rounded RTX 4090 figures):
    /// 2 µs launch, 1.6 µs floor, ~1 TB/s DRAM, ~13.6 G int32 ops/µs.
    fn default() -> Self {
        Self {
            launch_us: 2.0,
            min_kernel_us: 1.6,
            bytes_per_us: 1.0e6,
            ops_per_us: 13.6e6,
        }
    }
}

impl CostModel {
    /// Derives the cost model from a device specification — the calibrated
    /// path every live scheduler uses (the [`Default`] literals remain only
    /// as the config's device-free fallback).
    pub fn from_spec(spec: &DeviceSpec) -> Self {
        Self {
            launch_us: spec.kernel_launch_us,
            min_kernel_us: spec.min_kernel_us,
            bytes_per_us: spec.dram_bytes_per_us(),
            ops_per_us: spec.effective_int32_ops_per_us(),
        }
    }

    /// A unit's estimated service time on its stream, µs: the max of its
    /// memory time (scaled by access efficiency), compute time, and the
    /// latency floor — the same roofline shape the timeline charges.
    pub fn unit_cost(&self, desc: &KernelDesc) -> f64 {
        let bytes = (desc.bytes_read() + desc.bytes_written()) as f64;
        let mem = bytes / (self.bytes_per_us * desc.access_efficiency);
        let compute = desc.int32_ops as f64 / self.ops_per_us;
        mem.max(compute).max(self.min_kernel_us)
    }

    /// Raw bit pattern of the four constants, for fingerprinting.
    pub(crate) fn fingerprint_words(&self) -> [u64; 4] {
        [
            self.launch_us.to_bits(),
            self.min_kernel_us.to_bits(),
            self.bytes_per_us.to_bits(),
            self.ops_per_us.to_bits(),
        ]
    }
}

/// An N-device execution topology: per-device specs plus the shared
/// interconnect they exchange data over.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Device models, in device-index order.
    pub devices: Vec<DeviceSpec>,
    /// The shared device-to-device link.
    pub interconnect: InterconnectSpec,
}

impl Topology {
    /// A single-device topology (the interconnect is never exercised but
    /// keeps the type uniform).
    pub fn single(spec: DeviceSpec) -> Self {
        Self {
            devices: vec![spec],
            interconnect: InterconnectSpec::pcie_gen4(),
        }
    }

    /// `n` identical devices joined by `link`.
    pub fn homogeneous(n: usize, spec: DeviceSpec, link: InterconnectSpec) -> Self {
        assert!(n >= 1, "a topology needs at least one device");
        Self {
            devices: vec![spec; n],
            interconnect: link,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Per-device cost models, calibrated from each device's spec.
    pub fn cost_models(&self) -> Vec<CostModel> {
        self.devices.iter().map(CostModel::from_spec).collect()
    }

    /// Interconnect transfer time for `bytes`, µs (latency + wire time) —
    /// the partitioner's edge-weight scale.
    pub fn transfer_us(&self, bytes: u64) -> f64 {
        self.interconnect.latency_us + bytes as f64 / self.interconnect.bytes_per_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{BufferId, KernelKind};

    #[test]
    fn default_matches_historical_constants() {
        let c = CostModel::default();
        assert_eq!(c.launch_us, 2.0);
        assert_eq!(c.min_kernel_us, 1.6);
        assert_eq!(c.bytes_per_us, 1.0e6);
        assert_eq!(c.ops_per_us, 13.6e6);
    }

    #[test]
    fn from_spec_calibrates_to_device() {
        let spec = DeviceSpec::rtx_4090();
        let c = CostModel::from_spec(&spec);
        assert_eq!(c.launch_us, spec.kernel_launch_us);
        assert_eq!(c.min_kernel_us, spec.min_kernel_us);
        assert_eq!(c.bytes_per_us, spec.dram_bytes_per_us());
        assert_eq!(c.ops_per_us, spec.effective_int32_ops_per_us());
        // A different device gives a genuinely different model.
        let v100 = CostModel::from_spec(&DeviceSpec::v100());
        assert_ne!(c, v100);
        assert_ne!(c.fingerprint_words(), v100.fingerprint_words());
    }

    #[test]
    fn unit_cost_is_a_roofline() {
        let c = CostModel::default();
        // Tiny kernel: latency floor.
        let tiny = KernelDesc::new(KernelKind::Elementwise).ops(10);
        assert_eq!(c.unit_cost(&tiny), c.min_kernel_us);
        // Memory-bound kernel: traffic over bandwidth.
        let memk = KernelDesc::new(KernelKind::Elementwise).read(BufferId(1), 64 << 20);
        assert!(c.unit_cost(&memk) > (64 << 20) as f64 / c.bytes_per_us - 1e-9);
        // Compute-bound kernel: ops over throughput.
        let compk = KernelDesc::new(KernelKind::NttPhase1).ops(1_000_000_000);
        assert!((c.unit_cost(&compk) - 1.0e9 / c.ops_per_us).abs() < 1e-9);
    }

    #[test]
    fn topology_shapes() {
        let t = Topology::single(DeviceSpec::rtx_4090());
        assert_eq!(t.num_devices(), 1);
        let t = Topology::homogeneous(4, DeviceSpec::rtx_4090(), InterconnectSpec::pcie_gen4());
        assert_eq!(t.num_devices(), 4);
        assert_eq!(t.cost_models().len(), 4);
        assert!(t.transfer_us(0) >= t.interconnect.latency_us);
        assert!(t.transfer_us(1 << 20) > t.transfer_us(0));
    }
}
