//! The recorded kernel graph: what the ops *would have launched*, as data.

use fides_gpu_sim::{GraphEvent, KernelDesc, KernelKind};

/// One recorded kernel launch with its scheduling metadata.
#[derive(Clone, Debug)]
pub struct KernelNode {
    /// Stream the recording assigned (round-robin over limb batches).
    pub stream: usize,
    /// The limb-batch descriptor eager execution would have launched:
    /// buffers touched, bytes, int32 ops, kind.
    pub desc: KernelDesc,
    /// Barrier-delimited segment index. Nodes in different segments are
    /// ordered by a cross-limb sync point (rescale / base conversion) and
    /// must never be fused or reordered across it.
    pub segment: usize,
}

impl KernelNode {
    /// True for the elementwise kernel class the planner may fuse: pointwise
    /// modular arithmetic, fills/copies, centered modulus switches and the
    /// automorphism pre-permute — every kernel whose work is a
    /// one-coefficient-in, one-coefficient-out map (§III-F.5's fusion
    /// candidates). NTT/iNTT phases and base conversions have cross-
    /// coefficient data flow and stay unfused.
    pub fn is_fusible(&self) -> bool {
        fusible_kind(self.desc.kind)
    }
}

/// The kind-level fusibility rule behind [`KernelNode::is_fusible`] (also
/// applied to fused descriptors, whose kind may have degraded to the
/// generic elementwise label).
pub(crate) fn fusible_kind(kind: Option<KernelKind>) -> bool {
    matches!(
        kind,
        Some(
            KernelKind::Elementwise
                | KernelKind::Fill
                | KernelKind::SwitchModulus
                | KernelKind::Automorphism
        )
    )
}

/// A graph element: a kernel node or a stream barrier.
#[derive(Clone, Debug)]
pub enum GraphOp {
    /// A recorded kernel launch.
    Kernel(KernelNode),
    /// An event fence: `waiters` wait for everything recorded on `signals`.
    Barrier {
        /// Streams waited upon.
        signals: Vec<usize>,
        /// Streams that wait.
        waiters: Vec<usize>,
    },
}

/// The per-op (or per-batch) lazy kernel graph: every launch and fence one
/// scheduled region recorded, in program order.
#[derive(Clone, Debug, Default)]
pub struct ExecGraph {
    pub(crate) ops: Vec<GraphOp>,
    segments: usize,
}

impl ExecGraph {
    /// Builds the graph from a capture-event stream, assigning segment
    /// indices at each fence.
    pub fn from_events(events: Vec<GraphEvent>) -> Self {
        let mut ops = Vec::with_capacity(events.len());
        let mut segment = 0usize;
        for ev in events {
            match ev {
                GraphEvent::Launch { stream, desc } => ops.push(GraphOp::Kernel(KernelNode {
                    stream,
                    desc,
                    segment,
                })),
                GraphEvent::Fence { signals, waiters } => {
                    segment += 1;
                    ops.push(GraphOp::Barrier { signals, waiters });
                }
            }
        }
        Self {
            ops,
            segments: segment + 1,
        }
    }

    /// Number of recorded kernel nodes.
    pub fn kernel_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, GraphOp::Kernel(_)))
            .count()
    }

    /// Number of barrier-delimited segments.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates the recorded kernel nodes in program order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelNode> {
        self.ops.iter().filter_map(|o| match o {
            GraphOp::Kernel(n) => Some(n),
            GraphOp::Barrier { .. } => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(stream: usize, kind: KernelKind) -> GraphEvent {
        GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(kind),
        }
    }

    #[test]
    fn segments_split_at_fences() {
        let g = ExecGraph::from_events(vec![
            launch(0, KernelKind::Elementwise),
            launch(1, KernelKind::NttPhase1),
            GraphEvent::Fence {
                signals: vec![0, 1],
                waiters: vec![0, 1],
            },
            launch(0, KernelKind::Elementwise),
        ]);
        assert_eq!(g.kernel_count(), 3);
        assert_eq!(g.segment_count(), 2);
        let segs: Vec<usize> = g.kernels().map(|n| n.segment).collect();
        assert_eq!(segs, vec![0, 0, 1]);
    }

    #[test]
    fn fusibility_classes() {
        let g = ExecGraph::from_events(vec![
            launch(0, KernelKind::Elementwise),
            launch(0, KernelKind::Fill),
            launch(0, KernelKind::SwitchModulus),
            launch(0, KernelKind::Automorphism),
            launch(0, KernelKind::NttPhase1),
            launch(0, KernelKind::BaseConv),
        ]);
        let fusible: Vec<bool> = g.kernels().map(|n| n.is_fusible()).collect();
        assert_eq!(fusible, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn empty_graph() {
        let g = ExecGraph::from_events(Vec::new());
        assert!(g.is_empty());
        assert_eq!(g.kernel_count(), 0);
        assert_eq!(g.segment_count(), 1);
    }
}
