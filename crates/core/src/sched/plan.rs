//! The planning pass: elementwise-chain fusion and stream assignment.

use std::collections::BTreeMap;

use fides_gpu_sim::{KernelDesc, KernelKind};

use super::graph::{ExecGraph, GraphOp};

/// Planner configuration, derived from
/// [`CkksParameters`](crate::CkksParameters).
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Fuse consecutive same-stream elementwise-class launches into single
    /// launches (the graph-level §III-F.5 fusion; `FusionConfig::elementwise`).
    pub fuse_elementwise: bool,
    /// Stream count the plan targets; recorded streams are remapped modulo
    /// this.
    pub num_streams: usize,
    /// Longest elementwise chain one fused launch may absorb (a real fused
    /// kernel is bounded by registers/occupancy; 8 matches the deepest
    /// chain FIDESlib fuses).
    pub max_fuse: usize,
    /// Scheduler v2: derive a dependency DAG (buffer read/write sets +
    /// barriers) and critical-path list-schedule it onto the stream count
    /// (see [`sched`](crate::sched) module docs). `false` restores the v1
    /// modulo stream remap (the A/B baseline `BENCH_PR5.json` gates
    /// against). Driven by
    /// [`CkksParameters::sched_v2`](crate::CkksParameters).
    pub dep_schedule: bool,
    /// First-order cost constants used to rank and place units, calibrated
    /// from the active [`DeviceSpec`](fides_gpu_sim::DeviceSpec) via
    /// [`CostModel::from_spec`](super::CostModel::from_spec) (the default
    /// keeps the historical hard-coded figures for device-free callers).
    pub cost: super::CostModel,
    /// Devices the plan targets. `1` plans a single-device graph; larger
    /// values feed the partitioner and — crucially — the fingerprint, so a
    /// cached plan never rebinds across a topology change.
    pub devices: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            fuse_elementwise: true,
            num_streams: crate::context::NUM_STREAMS,
            max_fuse: 8,
            dep_schedule: true,
            cost: super::CostModel::default(),
            devices: 1,
        }
    }
}

/// Counters describing what planning did; accumulated per context into the
/// scheduling ledger the ablation benchmarks report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SchedStats {
    /// Scheduled regions planned.
    pub graphs: u64,
    /// Kernel nodes recorded by the ops.
    pub recorded_kernels: u64,
    /// Launches the plans actually issued (recorded − fused away).
    pub planned_launches: u64,
    /// Kernel launches eliminated by elementwise-chain fusion.
    pub fused_kernels: u64,
    /// Scheduled regions whose plan was served from the plan cache.
    pub plan_cache_hits: u64,
    /// Scheduled regions that ran the full planning pass.
    pub plan_cache_misses: u64,
}

impl SchedStats {
    /// Adds one plan's counters.
    pub fn absorb(&mut self, other: &SchedStats) {
        self.graphs += other.graphs;
        self.recorded_kernels += other.recorded_kernels;
        self.planned_launches += other.planned_launches;
        self.fused_kernels += other.fused_kernels;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
    }
}

/// One planned step.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// Launch `desc` on `stream`.
    Launch {
        /// Target stream (already remapped to the plan's stream count).
        stream: usize,
        /// Possibly-fused descriptor.
        desc: KernelDesc,
    },
    /// Apply an event fence.
    Fence {
        /// Streams waited upon.
        signals: Vec<usize>,
        /// Streams that wait.
        waiters: Vec<usize>,
    },
}

/// The scheduled form of an [`ExecGraph`]: launches (possibly fused) plus
/// fences, ready for a [`PlanExecutor`](super::PlanExecutor).
#[derive(Clone, Debug, Default)]
pub struct ExecPlan {
    pub(crate) steps: Vec<PlanStep>,
    pub(crate) stats: SchedStats,
    pub(crate) mem: super::mem::MemPlan,
    /// Buffer → liveness-pool slot binding (empty without the pooling
    /// pass); lets the replay executor alias slot-sharing buffers in the
    /// device's L2 residency model.
    pub(crate) slots: std::collections::HashMap<fides_gpu_sim::BufferId, u64>,
}

impl ExecPlan {
    /// Counters for this plan.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// The memory plan the liveness pass derived (slot-pooled footprint
    /// with scheduler v2, raw per-buffer footprint without).
    pub fn mem(&self) -> &super::mem::MemPlan {
        &self.mem
    }

    /// The buffer → pool-slot binding the liveness pass colored (empty
    /// when the plan was produced without pooling, i.e. scheduler v1).
    pub fn slot_binding(&self) -> &std::collections::HashMap<fides_gpu_sim::BufferId, u64> {
        &self.slots
    }

    /// Number of kernel launches the plan issues.
    pub fn launch_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Launch { .. }))
            .count()
    }

    /// The planned steps in issue order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }
}

/// The scheduling/fusion pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Planner {
    cfg: PlanConfig,
}

/// An elementwise chain being grown on one stream.
struct Pending {
    desc: KernelDesc,
    chain_len: usize,
    /// Segment the chain belongs to — fusion across segments would cross a
    /// recorded cross-limb sync point.
    segment: usize,
}

impl Planner {
    /// Creates a planner with the given configuration.
    pub fn new(cfg: PlanConfig) -> Self {
        Self { cfg }
    }

    /// Plans a recorded graph.
    ///
    /// With [`PlanConfig::dep_schedule`] set (scheduler v2, the default)
    /// this derives a dependency DAG and critical-path list-schedules it —
    /// see `sched/dag.rs`'s module docs. Otherwise the v1 pass
    /// runs: streams remap modulo the configured count, elementwise chains
    /// fuse (when enabled), and every barrier is preserved. Either way the
    /// liveness pass then derives the plan's memory footprint
    /// ([`ExecPlan::mem`]).
    ///
    /// Per-*recorded*-stream program order is preserved exactly; only
    /// launches on *different* recorded streams may be reordered relative
    /// to each other, and only when no recorded barrier separates work
    /// that touches the same buffers (see the invariant in the
    /// [`sched`](crate::sched) module docs). Op totals are invariant;
    /// traffic *shrinks* where a chain re-touches its own buffers — values
    /// stay in registers across the fused stages (the actual bandwidth
    /// saving of §III-F.5), so the intermediate write→read roundtrips
    /// disappear.
    pub fn plan(&self, graph: &ExecGraph) -> ExecPlan {
        let mut plan = if self.cfg.dep_schedule {
            super::dag::plan_dag(graph, &self.cfg)
        } else {
            self.plan_modulo(graph)
        };
        let (mem, slots) = super::mem::analyze(&plan.steps, self.cfg.dep_schedule);
        plan.mem = mem;
        plan.slots = slots;
        plan
    }

    /// The v1 planning pass: modulo stream remap + in-order chain fusion.
    fn plan_modulo(&self, graph: &ExecGraph) -> ExecPlan {
        let streams = self.cfg.num_streams.max(1);
        let mut steps = Vec::with_capacity(graph.ops.len());
        // Chain being grown per stream (BTreeMap: deterministic flush order).
        let mut pending: BTreeMap<usize, Pending> = BTreeMap::new();
        let mut recorded = 0u64;
        let mut fused = 0u64;

        let flush =
            |pending: &mut BTreeMap<usize, Pending>, steps: &mut Vec<PlanStep>, stream: usize| {
                if let Some(p) = pending.remove(&stream) {
                    steps.push(PlanStep::Launch {
                        stream,
                        desc: p.desc,
                    });
                }
            };

        for op in &graph.ops {
            match op {
                GraphOp::Kernel(node) => {
                    recorded += 1;
                    let stream = node.stream % streams;
                    if self.cfg.fuse_elementwise && node.is_fusible() {
                        if let Some(p) = pending.get_mut(&stream) {
                            // Barriers flush every chain, so a surviving
                            // chain is always in the current segment.
                            debug_assert_eq!(
                                p.segment, node.segment,
                                "pending chain crossed a barrier"
                            );
                            if p.chain_len < self.cfg.max_fuse {
                                merge(&mut p.desc, &node.desc);
                                p.chain_len += 1;
                                fused += 1;
                                continue;
                            }
                            flush(&mut pending, &mut steps, stream);
                        }
                        pending.insert(
                            stream,
                            Pending {
                                desc: node.desc.clone(),
                                chain_len: 1,
                                segment: node.segment,
                            },
                        );
                    } else {
                        flush(&mut pending, &mut steps, stream);
                        steps.push(PlanStep::Launch {
                            stream,
                            desc: node.desc.clone(),
                        });
                    }
                }
                GraphOp::Barrier { signals, waiters } => {
                    // A barrier orders every stream: flush all chains first.
                    let open: Vec<usize> = pending.keys().copied().collect();
                    for s in open {
                        flush(&mut pending, &mut steps, s);
                    }
                    steps.push(PlanStep::Fence {
                        signals: remap_streams(signals, streams),
                        waiters: remap_streams(waiters, streams),
                    });
                }
            }
        }
        let open: Vec<usize> = pending.keys().copied().collect();
        for s in open {
            flush(&mut pending, &mut steps, s);
        }

        let planned = steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Launch { .. }))
            .count() as u64;
        ExecPlan {
            steps,
            stats: SchedStats {
                graphs: 1,
                recorded_kernels: recorded,
                planned_launches: planned,
                fused_kernels: fused,
                ..SchedStats::default()
            },
            mem: Default::default(),
            slots: Default::default(),
        }
    }
}

/// Merges a follower launch into a chain head: compute accumulates, the
/// conservative access efficiency wins, mixed kinds degrade to the generic
/// elementwise label — and traffic dedups. A buffer the chain has already
/// written is live in registers when the follower reads it, and a buffer
/// written twice is stored once at the end, so the intermediate roundtrips
/// are elided. This is the bandwidth saving that makes elementwise fusion
/// profitable on a memory-bound device. (Shared with the v2 scheduler's
/// pre-fusion and emission-fusion stages.)
pub(crate) fn merge(into: &mut KernelDesc, next: &KernelDesc) {
    for &(buf, bytes) in &next.reads {
        let written = into.writes.iter().any(|&(b, _)| b == buf);
        let read = into.reads.iter().any(|&(b, _)| b == buf);
        if !written && !read {
            into.reads.push((buf, bytes));
        }
    }
    for &(buf, bytes) in &next.writes {
        if !into.writes.iter().any(|&(b, _)| b == buf) {
            into.writes.push((buf, bytes));
        }
    }
    into.int32_ops += next.int32_ops;
    if next.access_efficiency < into.access_efficiency {
        into.access_efficiency = next.access_efficiency;
    }
    if into.kind != next.kind {
        into.kind = Some(KernelKind::Elementwise);
    }
}

fn remap_streams(streams: &[usize], n: usize) -> Vec<usize> {
    let mut out: Vec<usize> = streams.iter().map(|s| s % n).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{BufferId, GraphEvent};

    fn ew(stream: usize, buf: u64, ops: u64) -> GraphEvent {
        GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(buf), 1024)
                .write(BufferId(buf), 1024)
                .ops(ops),
        }
    }

    fn ntt(stream: usize) -> GraphEvent {
        GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1).ops(10),
        }
    }

    // The tests below pin the v1 (modulo-remap) pass; scheduler v2 has its
    // own suite in `dag.rs`.
    fn planner(fuse: bool) -> Planner {
        Planner::new(PlanConfig {
            fuse_elementwise: fuse,
            num_streams: 4,
            max_fuse: 8,
            dep_schedule: false,
            ..PlanConfig::default()
        })
    }

    #[test]
    fn fuses_same_stream_elementwise_chains() {
        let g = ExecGraph::from_events(vec![ew(0, 1, 5), ew(0, 2, 7), ew(1, 3, 11)]);
        let plan = planner(true).plan(&g);
        assert_eq!(plan.launch_count(), 2, "stream-0 chain fused");
        assert_eq!(plan.stats().recorded_kernels, 3);
        assert_eq!(plan.stats().fused_kernels, 1);
        // Byte/op totals preserved in the fused launch.
        let fused_desc = plan
            .steps()
            .iter()
            .find_map(|s| match s {
                PlanStep::Launch { stream: 0, desc } => Some(desc),
                _ => None,
            })
            .expect("stream-0 launch");
        assert_eq!(fused_desc.int32_ops, 12);
        assert_eq!(fused_desc.bytes_read(), 2048);
    }

    #[test]
    fn fusion_off_replays_verbatim() {
        let g = ExecGraph::from_events(vec![ew(0, 1, 5), ew(0, 2, 7), ntt(0), ew(0, 3, 1)]);
        let plan = planner(false).plan(&g);
        assert_eq!(plan.launch_count(), 4);
        assert_eq!(plan.stats().fused_kernels, 0);
    }

    #[test]
    fn barriers_break_chains() {
        let g = ExecGraph::from_events(vec![
            ew(0, 1, 5),
            GraphEvent::Fence {
                signals: vec![0],
                waiters: vec![0],
            },
            ew(0, 2, 5),
        ]);
        let plan = planner(true).plan(&g);
        assert_eq!(plan.launch_count(), 2, "no fusion across a barrier");
        assert!(matches!(plan.steps()[1], PlanStep::Fence { .. }));
    }

    #[test]
    fn non_fusible_kinds_break_chains() {
        let g = ExecGraph::from_events(vec![ew(0, 1, 5), ntt(0), ew(0, 2, 5)]);
        let plan = planner(true).plan(&g);
        assert_eq!(plan.launch_count(), 3);
    }

    #[test]
    fn streams_remap_modulo_configured_count() {
        let g = ExecGraph::from_events(vec![ntt(9), ntt(2)]);
        let plan = planner(true).plan(&g);
        let streams: Vec<usize> = plan
            .steps()
            .iter()
            .filter_map(|s| match s {
                PlanStep::Launch { stream, .. } => Some(*stream),
                _ => None,
            })
            .collect();
        assert_eq!(streams, vec![1, 2], "stream 9 remaps to 9 % 4 = 1");
    }

    #[test]
    fn max_fuse_caps_chain_length() {
        let events: Vec<GraphEvent> = (0..10).map(|i| ew(0, i, 1)).collect();
        let plan = Planner::new(PlanConfig {
            fuse_elementwise: true,
            num_streams: 4,
            max_fuse: 4,
            dep_schedule: false,
            ..PlanConfig::default()
        })
        .plan(&ExecGraph::from_events(events));
        assert_eq!(plan.launch_count(), 3, "10 kernels at cap 4 → 4+4+2");
    }
}
