//! Plan-level device-memory liveness: interval coloring of buffer
//! lifetimes into reusable pool slots.
//!
//! The planner sees every buffer a graph touches and the issue order of
//! its launches, which is exactly the information a stream-ordered device
//! allocator (CUDA's `cudaMallocAsync` pool, §III-D) exploits: a buffer
//! whose last use has been issued can donate its slot to the next
//! allocation. This pass computes, per plan:
//!
//! * each buffer's **footprint** (the largest single-launch access, a
//!   proxy for its allocation size) and **live interval** in launch issue
//!   order;
//! * a greedy best-fit **slot assignment**: an expiring buffer's slot is
//!   reused by the next buffer it can hold, so the pool's high-water mark
//!   ([`MemPlan::peak_device_bytes`]) tracks peak *concurrent* liveness
//!   instead of the sum of every allocation;
//! * the **allocation count** ([`MemPlan::allocations`]) the pool performs
//!   (slots created, not buffers bound).
//!
//! With scheduler v2 off the pass still runs but performs no reuse — every
//! buffer is its own slot — which is what makes the memory win a gated
//! A/B metric in `BENCH_PR5.json`. Issue-order liveness idealizes
//! cross-stream overlap (a slot handoff between unordered launches would
//! need the allocator's internal event dependency, which the stream-ordered
//! pool inserts on demand); the metric models the pool's steady-state
//! footprint, not a worst-case racy bound.
//!
//! One distinction matters for the replay binding: a buffer whose **first
//! touch is a read** was populated before the plan ran (a ciphertext limb,
//! a key digit — storage the caller owns), so the pool never suballocates
//! it. Those *external* buffers participate in the interval coloring (the
//! counters model a pool that tracks everything the plan touches) but are
//! excluded from the returned binding: at replay they keep their original
//! ids, so L2 residency they accumulated in earlier plans survives. Only
//! plan-created temporaries — first touch is a write — are presented to the
//! device slot-canonically.

use std::collections::{BTreeSet, HashMap, HashSet};

use fides_gpu_sim::BufferId;

use super::plan::PlanStep;

/// The memory plan the liveness pass derives for one [`ExecPlan`](super::ExecPlan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemPlan {
    /// Pool high-water mark in bytes: total size of every slot the pool
    /// had to create.
    pub peak_device_bytes: u64,
    /// Slots the pool allocated (buffer bindings that could not reuse an
    /// expired slot).
    pub allocations: u64,
    /// Distinct buffers the plan touches (the allocation count a
    /// pool-less backend would perform).
    pub buffers: u64,
}

impl MemPlan {
    /// Fraction of buffer bindings served by slot reuse.
    pub fn reuse_rate(&self) -> f64 {
        if self.buffers == 0 {
            0.0
        } else {
            1.0 - self.allocations as f64 / self.buffers as f64
        }
    }
}

/// Runs the liveness pass over planned steps. With `pool` set, expired
/// slots are reused best-fit; otherwise every buffer allocates its own
/// slot (the v1 baseline the gate compares against).
///
/// Besides the [`MemPlan`] counters this returns the **buffer → slot
/// binding** the coloring produced (empty without pooling): the replay
/// executor presents slot-canonical buffer ids to the device so that slot
/// reuse shows up as L2 residency — two buffers time-sharing one slot alias
/// the same physical lines, exactly as a stream-ordered allocator's pool
/// behaves. Buffers whose first touch is a read are external (born before
/// the plan) and stay out of the binding: rewriting their ids would sever
/// the L2 residency they carry across plan executions.
pub(crate) fn analyze(steps: &[PlanStep], pool: bool) -> (MemPlan, HashMap<BufferId, u64>) {
    // Footprints and live intervals in launch issue order. Reads are
    // scanned before writes within a launch so an in-place operand whose
    // first appearance is `read + write` classifies as external.
    let mut footprint: HashMap<BufferId, u64> = HashMap::new();
    let mut first: HashMap<BufferId, usize> = HashMap::new();
    let mut last: HashMap<BufferId, usize> = HashMap::new();
    let mut external: HashSet<BufferId> = HashSet::new();
    let mut launch_idx = 0usize;
    for step in steps {
        if let PlanStep::Launch { desc, .. } = step {
            for (is_read, accesses) in [(true, &desc.reads), (false, &desc.writes)] {
                for &(buf, bytes) in accesses {
                    let f = footprint.entry(buf).or_insert(0);
                    *f = (*f).max(bytes);
                    if let std::collections::hash_map::Entry::Vacant(e) = first.entry(buf) {
                        e.insert(launch_idx);
                        if is_read {
                            external.insert(buf);
                        }
                    }
                    last.insert(buf, launch_idx);
                }
            }
            launch_idx += 1;
        }
    }
    let buffers = footprint.len() as u64;
    if !pool {
        return (
            MemPlan {
                peak_device_bytes: footprint.values().sum(),
                allocations: buffers,
                buffers,
            },
            HashMap::new(),
        );
    }

    // Deterministic event lists per launch index.
    let mut births: Vec<Vec<BufferId>> = vec![Vec::new(); launch_idx];
    let mut deaths: Vec<Vec<BufferId>> = vec![Vec::new(); launch_idx];
    for (&buf, &i) in &first {
        births[i].push(buf);
    }
    for (&buf, &i) in &last {
        deaths[i].push(buf);
    }
    for list in births.iter_mut().chain(deaths.iter_mut()) {
        list.sort_unstable();
    }

    // Greedy best-fit: free slots keyed by (size, slot id) so the smallest
    // slot that fits is found by range query.
    let mut free: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut slot_of: HashMap<BufferId, (u64, u64)> = HashMap::new();
    let mut binding: HashMap<BufferId, u64> = HashMap::new();
    let mut next_slot = 0u64;
    let mut allocations = 0u64;
    let mut pool_bytes = 0u64;
    for i in 0..launch_idx {
        // Bind buffers born at this launch *before* releasing the ones
        // dying here: a buffer first and last touched by the same launch
        // is live during it.
        for &buf in &births[i] {
            let need = footprint[&buf];
            let reuse = free.range((need, 0)..).next().copied();
            let slot = match reuse {
                Some(s) => {
                    free.remove(&s);
                    s
                }
                None => {
                    allocations += 1;
                    pool_bytes += need;
                    let s = (need, next_slot);
                    next_slot += 1;
                    s
                }
            };
            if !external.contains(&buf) {
                binding.insert(buf, slot.1);
            }
            slot_of.insert(buf, slot);
        }
        for &buf in &deaths[i] {
            if let Some(slot) = slot_of.remove(&buf) {
                free.insert(slot);
            }
        }
    }
    (
        MemPlan {
            peak_device_bytes: pool_bytes,
            allocations,
            buffers,
        },
        binding,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{KernelDesc, KernelKind};

    fn launch(reads: &[(u64, u64)], writes: &[(u64, u64)]) -> PlanStep {
        let mut desc = KernelDesc::new(KernelKind::Elementwise);
        for &(b, bytes) in reads {
            desc = desc.read(BufferId(b), bytes);
        }
        for &(b, bytes) in writes {
            desc = desc.write(BufferId(b), bytes);
        }
        PlanStep::Launch { stream: 0, desc }
    }

    #[test]
    fn disjoint_lifetimes_share_one_slot() {
        // Buffer 1 dies at launch 0; buffer 2 is born at launch 1 and fits
        // in its slot. Births are writes so the temporaries are slot-bound.
        let steps = vec![
            launch(&[], &[(1, 1024)]),
            launch(&[], &[(2, 512)]),
            launch(&[], &[(3, 256)]),
        ];
        let (pooled, binding) = analyze(&steps, true);
        assert_eq!(pooled.buffers, 3);
        assert_eq!(pooled.allocations, 1, "all three reuse the first slot");
        assert_eq!(pooled.peak_device_bytes, 1024);
        for b in [1u64, 2, 3] {
            assert_eq!(binding[&BufferId(b)], 0, "all three bound to slot 0");
        }
        let (raw, raw_binding) = analyze(&steps, false);
        assert_eq!(raw.allocations, 3);
        assert_eq!(raw.peak_device_bytes, 1024 + 512 + 256);
        assert!(raw_binding.is_empty(), "no binding without pooling");
        assert!(pooled.peak_device_bytes < raw.peak_device_bytes);
        assert!(pooled.reuse_rate() > 0.6);
    }

    #[test]
    fn overlapping_lifetimes_need_distinct_slots() {
        // Both buffers live across both launches: no reuse possible.
        let steps = vec![
            launch(&[], &[(1, 1024), (2, 1024)]),
            launch(&[(2, 1024), (1, 1024)], &[]),
        ];
        let (m, binding) = analyze(&steps, true);
        assert_eq!(m.allocations, 2);
        assert_eq!(m.peak_device_bytes, 2048);
        assert_ne!(binding[&BufferId(1)], binding[&BufferId(2)]);
    }

    #[test]
    fn same_launch_birth_and_death_does_not_self_alias() {
        // Buffer 1's last touch and buffer 2's first touch are the same
        // launch: they are concurrently live and must not share a slot.
        let steps = vec![
            launch(&[], &[(1, 1024)]),
            launch(&[(1, 1024)], &[(2, 1024)]),
        ];
        let (m, binding) = analyze(&steps, true);
        assert_eq!(m.allocations, 2);
        assert_ne!(
            binding[&BufferId(1)],
            binding[&BufferId(2)],
            "concurrently live buffers must not alias one slot"
        );
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_slot() {
        // Slots of 100 and 1000 free up; a 150-byte buffer must take the
        // 1000 slot (best fit that holds it), leaving 100 free.
        let steps = vec![
            launch(&[], &[(1, 100), (2, 1000)]),
            launch(&[], &[(3, 150)]),
            launch(&[], &[(4, 90)]),
        ];
        let (m, binding) = analyze(&steps, true);
        assert_eq!(
            m.allocations, 2,
            "150 reuses the 1000 slot, 90 the 100 slot"
        );
        assert_eq!(m.peak_device_bytes, 1100);
        assert_eq!(binding[&BufferId(3)], binding[&BufferId(2)]);
        assert_eq!(binding[&BufferId(4)], binding[&BufferId(1)]);
    }

    #[test]
    fn read_first_external_buffers_are_not_slot_bound() {
        // Buffer 7's first touch is a read: it existed before the plan
        // (caller-owned ciphertext storage), so the pool counts it but the
        // replay binding must leave its id alone — rewriting it would
        // disconnect the L2 residency it carries across plan executions.
        // Buffer 8 is written first: a plan temporary, slot-bound.
        let steps = vec![
            launch(&[(7, 1024)], &[(8, 1024)]),
            launch(&[(8, 1024)], &[]),
        ];
        let (m, binding) = analyze(&steps, true);
        assert_eq!(m.buffers, 2, "external buffers still count");
        assert_eq!(m.allocations, 2, "and still occupy a pool slot");
        assert!(
            !binding.contains_key(&BufferId(7)),
            "read-first (external) buffer must keep its original id"
        );
        assert!(
            binding.contains_key(&BufferId(8)),
            "write-first temporary is slot-canonical"
        );
        // An in-place first touch (read + write of the same buffer in one
        // launch) classifies as external too: the data pre-existed.
        let steps = vec![launch(&[(9, 64)], &[(9, 64)])];
        let (_, binding) = analyze(&steps, true);
        assert!(!binding.contains_key(&BufferId(9)));
    }

    #[test]
    fn empty_plan_is_zero() {
        let (m, binding) = analyze(&[], true);
        assert_eq!(m, MemPlan::default());
        assert_eq!(m.reuse_rate(), 0.0);
        assert!(binding.is_empty());
    }

    #[test]
    fn footprint_is_max_single_access() {
        let steps = vec![launch(&[(1, 100)], &[]), launch(&[(1, 900)], &[])];
        let (m, _) = analyze(&steps, true);
        assert_eq!(m.peak_device_bytes, 900);
    }
}
