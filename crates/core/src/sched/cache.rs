//! Plan caching: structural graph fingerprints and a bounded LRU of
//! finished [`ExecPlan`]s.
//!
//! Planning a steady-state graph from scratch every tick is pure waste:
//! the serve batcher records the *same* graph shape tick after tick (same
//! programs, same limb counts, same stream offsets), and `eval_scope`
//! bodies repeat across iterations of a training loop. The only thing
//! that changes between repetitions is buffer *identity* — fresh device
//! allocations get fresh [`BufferId`]s.
//!
//! The fingerprint therefore hashes the graph's **structure**: kernel
//! kinds, recorded streams, byte/op totals, barrier shapes and the
//! *aliasing pattern* of buffers (each buffer renamed to its
//! first-occurrence index), plus the planner configuration. Two graphs
//! with equal fingerprints have isomorphic dependency DAGs with equal
//! costs, so a cached plan is valid for both once its buffer references
//! are rebound through the first-occurrence correspondence — an O(plan)
//! copy instead of an O(V + E + V·log V) planning pass.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use fides_gpu_sim::BufferId;

use super::graph::{ExecGraph, GraphOp};
use super::plan::{ExecPlan, PlanConfig, PlanStep, Planner};

/// FNV-1a, 64-bit: tiny, deterministic across processes, and collision-
/// safe enough for a bounded cache (a collision costs timing fidelity on
/// one plan, never ciphertext bits — functional math runs at record time).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Computes the structural fingerprint of `graph` under `cfg` and the
/// first-occurrence buffer binding the canonical renaming is relative to.
///
/// The binding is what [`PlanCache::lookup`] uses to rebind a cached
/// plan's buffer references onto the current graph's buffers.
pub fn fingerprint(graph: &ExecGraph, cfg: &PlanConfig) -> (u64, Vec<BufferId>) {
    let mut h = Fnv::new();
    h.u64(cfg.fuse_elementwise as u64);
    h.u64(cfg.dep_schedule as u64);
    h.u64(cfg.num_streams as u64);
    h.u64(cfg.max_fuse as u64);
    // Topology is part of the key: a plan ranked under one device model or
    // partitioned for one device count must never rebind onto another.
    h.u64(cfg.devices as u64);
    for w in cfg.cost.fingerprint_words() {
        h.u64(w);
    }
    let mut canon: HashMap<BufferId, u64> = HashMap::new();
    let mut binding: Vec<BufferId> = Vec::new();
    let mut canon_of = |buf: BufferId, canon: &mut HashMap<BufferId, u64>| -> u64 {
        *canon.entry(buf).or_insert_with(|| {
            binding.push(buf);
            binding.len() as u64 - 1
        })
    };
    for op in &graph.ops {
        match op {
            GraphOp::Kernel(node) => {
                h.u64(1);
                h.u64(node.stream as u64);
                h.u64(node.desc.kind.map_or(u64::MAX, |k| k as u64));
                h.u64(node.desc.int32_ops);
                h.u64(node.desc.access_efficiency.to_bits());
                h.u64(node.desc.reads.len() as u64);
                for &(buf, bytes) in &node.desc.reads {
                    h.u64(canon_of(buf, &mut canon));
                    h.u64(bytes);
                }
                h.u64(node.desc.writes.len() as u64);
                for &(buf, bytes) in &node.desc.writes {
                    h.u64(canon_of(buf, &mut canon));
                    h.u64(bytes);
                }
            }
            GraphOp::Barrier { signals, waiters } => {
                h.u64(2);
                h.u64(signals.len() as u64);
                for &s in signals {
                    h.u64(s as u64);
                }
                h.u64(waiters.len() as u64);
                for &w in waiters {
                    h.u64(w as u64);
                }
            }
        }
    }
    (h.0, binding)
}

/// Plans every graph in `graphs` under `cfg`, fanning the planning passes
/// out over at most `workers` threads (`0` resolves the ambient rayon
/// worker count). Returns, in input order, each graph's plan paired with
/// the wall microseconds its own planning pass took.
///
/// This is the cache-miss fan-out for batch servers whose per-shard
/// graphs are independent by construction: `Planner::plan` is a pure
/// function of `(cfg, graph)`, so the plans are byte-identical to the
/// sequential ones at every worker count — only the wall time changes.
/// Fingerprinting and cache bookkeeping stay on the calling thread; only
/// the planning passes themselves run in parallel.
pub fn plan_parallel(
    cfg: &PlanConfig,
    graphs: &[&ExecGraph],
    workers: usize,
) -> Vec<(ExecPlan, u64)> {
    let cfg = *cfg;
    rayon::map_bounded(workers, graphs.len(), move |i| {
        let t0 = Instant::now();
        let plan = Planner::new(cfg).plan(graphs[i]);
        (plan, t0.elapsed().as_micros() as u64)
    })
}

struct CacheEntry {
    plan: Arc<ExecPlan>,
    binding: Vec<BufferId>,
    last_used: u64,
    /// Entered the cache pre-planned (snapshot restore or an explicit
    /// warmup pass) rather than from live traffic — lets the serving
    /// layer count warm-start hits separately.
    warm: bool,
}

/// A bounded LRU of planned graphs, keyed by structural fingerprint.
///
/// [`CkksContext`](crate::CkksContext) holds one for `eval_scope`-style
/// regions; the serve layer holds one per server for batch ticks. Lookups
/// and insertions are `&mut self` — owners wrap the cache in their own
/// lock.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<u64, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    /// Wall microseconds spent in planning passes on behalf of this
    /// cache's misses (owners report it via [`PlanCache::note_plan_us`]).
    plan_us: u64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default bound: enough for every distinct steady-state graph shape a
    /// serving mix realistically cycles through.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// Creates a cache bounded to `capacity` plans (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            plan_us: 0,
        }
    }

    /// Resident plan count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a planning pass.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative wall microseconds the owner spent planning this cache's
    /// misses (see [`PlanCache::note_plan_us`]).
    pub fn plan_us(&self) -> u64 {
        self.plan_us
    }

    /// Accounts `us` wall microseconds of planning work into this cache's
    /// ledger. Owners call this with the per-plan timings
    /// [`plan_parallel`] measures (or their own), so "how much planning
    /// latency did the cache fail to absorb" is answerable per cache.
    pub fn note_plan_us(&mut self, us: u64) {
        self.plan_us += us;
    }

    /// Returns the cached plan for `fp`, rebound onto `binding`'s buffers,
    /// or `None` (counting a miss) when the shape has not been planned.
    pub fn lookup(&mut self, fp: u64, binding: &[BufferId]) -> Option<ExecPlan> {
        self.clock += 1;
        match self.entries.get_mut(&fp) {
            Some(e) if e.binding.len() == binding.len() => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(rebind(&e.plan, &e.binding, binding))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `plan` for `fp`, evicting the least-recently-used entry at
    /// capacity — preferring **non-warm** victims. Warm entries (snapshot
    /// restore, warmup pass) sit at the cold end of the LRU order the
    /// moment they land, because nothing has hit them yet; plain LRU
    /// would let a post-restore burst of transient new shapes wipe the
    /// entire warm set before evicting a single member of its own burst.
    /// Churn therefore evicts among itself first; a warm entry only
    /// leaves once every resident entry is warm (plain LRU then, so the
    /// cache can still turn over fully).
    pub fn insert(&mut self, fp: u64, plan: &ExecPlan, binding: Vec<BufferId>) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&fp) {
            // `last_used` values are unique (the clock ticks per call), so
            // the minimum is unambiguous regardless of map iteration order.
            let lru_of = |warm_only: bool| {
                self.entries
                    .iter()
                    .filter(|(_, e)| warm_only || !e.warm)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k)
            };
            if let Some(victim) = lru_of(false).or_else(|| lru_of(true)) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            fp,
            CacheEntry {
                plan: Arc::new(plan.clone()),
                binding,
                last_used: self.clock,
                warm: false,
            },
        );
    }

    /// Re-inserts a deserialized entry and marks it warm. Same LRU
    /// bookkeeping as [`PlanCache::insert`]; callers restore entries in
    /// least-recently-used-first order to reproduce eviction behavior.
    /// The warm mark is also eviction protection: restored entries land
    /// at the cold end of the LRU order (nothing has hit them yet), and
    /// [`PlanCache::insert`] prefers non-warm victims, so a post-restore
    /// burst of new shapes churns among itself instead of silently
    /// undoing the restore.
    pub fn restore_entry(&mut self, fp: u64, plan: ExecPlan, binding: Vec<BufferId>) {
        self.insert(fp, &plan, binding);
        self.mark_warm(fp);
    }

    /// Flags a resident fingerprint as pre-planned (warmup pass); no-op
    /// when absent.
    pub fn mark_warm(&mut self, fp: u64) {
        if let Some(e) = self.entries.get_mut(&fp) {
            e.warm = true;
        }
    }

    /// Whether `fp` is resident *and* was pre-planned by a restore or
    /// warmup rather than live traffic.
    pub fn is_warm(&self, fp: u64) -> bool {
        self.entries.get(&fp).is_some_and(|e| e.warm)
    }

    /// Every resident entry as `(fingerprint, plan, binding)`, least
    /// recently used first — the serialization order that lets a restore
    /// replay [`PlanCache::restore_entry`] calls and land in the same LRU
    /// state.
    pub fn export_entries(&self) -> Vec<(u64, Arc<ExecPlan>, Vec<BufferId>)> {
        let mut entries: Vec<(&u64, &CacheEntry)> = self.entries.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(&fp, e)| (fp, Arc::clone(&e.plan), e.binding.clone()))
            .collect()
    }
}

/// Clones `plan` with every buffer reference translated from the cached
/// graph's first-occurrence binding to the current graph's.
fn rebind(plan: &Arc<ExecPlan>, old: &[BufferId], new: &[BufferId]) -> ExecPlan {
    let mut out = (**plan).clone();
    if old == new {
        return out;
    }
    let map: HashMap<BufferId, BufferId> = old
        .iter()
        .zip(new)
        .filter(|(a, b)| a != b)
        .map(|(&a, &b)| (a, b))
        .collect();
    if map.is_empty() {
        return out;
    }
    for step in &mut out.steps {
        if let PlanStep::Launch { desc, .. } = step {
            for (buf, _) in desc.reads.iter_mut().chain(desc.writes.iter_mut()) {
                if let Some(&nb) = map.get(buf) {
                    *buf = nb;
                }
            }
        }
    }
    // The liveness slot binding is keyed by buffer id, so it must follow
    // the same translation — a stale key could collide with a *different*
    // current buffer and alias two live buffers onto one slot.
    out.slots = out
        .slots
        .into_iter()
        .map(|(buf, slot)| (*map.get(&buf).unwrap_or(&buf), slot))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Planner;
    use fides_gpu_sim::{GraphEvent, KernelDesc, KernelKind};

    fn cfg() -> PlanConfig {
        PlanConfig {
            num_streams: 4,
            ..PlanConfig::default()
        }
    }

    fn graph(bufs: &[u64]) -> ExecGraph {
        ExecGraph::from_events(
            bufs.iter()
                .enumerate()
                .map(|(i, &b)| GraphEvent::Launch {
                    stream: i % 2,
                    desc: KernelDesc::new(KernelKind::Elementwise)
                        .read(BufferId(b), 4096)
                        .write(BufferId(b), 4096)
                        .ops(100),
                })
                .collect(),
        )
    }

    #[test]
    fn identical_structure_same_fingerprint_despite_buffers() {
        let (fa, ba) = fingerprint(&graph(&[10, 11, 10]), &cfg());
        let (fb, bb) = fingerprint(&graph(&[77, 93, 77]), &cfg());
        assert_eq!(fa, fb, "buffer identity must not affect the fingerprint");
        assert_eq!(ba, vec![BufferId(10), BufferId(11)]);
        assert_eq!(bb, vec![BufferId(77), BufferId(93)]);
    }

    #[test]
    fn aliasing_pattern_affects_fingerprint() {
        // Same descriptors, different aliasing: [a, b, a] vs [a, b, b].
        let (fa, _) = fingerprint(&graph(&[1, 2, 1]), &cfg());
        let (fb, _) = fingerprint(&graph(&[1, 2, 2]), &cfg());
        assert_ne!(fa, fb, "aliasing changes the dependency DAG");
    }

    #[test]
    fn config_affects_fingerprint() {
        let g = graph(&[1, 2]);
        let (fa, _) = fingerprint(&g, &cfg());
        let (fb, _) = fingerprint(
            &g,
            &PlanConfig {
                num_streams: 8,
                ..cfg()
            },
        );
        let (fc, _) = fingerprint(
            &g,
            &PlanConfig {
                fuse_elementwise: false,
                ..cfg()
            },
        );
        assert_ne!(fa, fb, "stream count is part of the key");
        assert_ne!(fa, fc, "fusion config is part of the key");
    }

    #[test]
    fn topology_affects_fingerprint() {
        use crate::sched::CostModel;
        use fides_gpu_sim::DeviceSpec;
        let g = graph(&[1, 2]);
        let (f1, _) = fingerprint(&g, &cfg());
        let (f2, _) = fingerprint(
            &g,
            &PlanConfig {
                devices: 2,
                ..cfg()
            },
        );
        assert_ne!(f1, f2, "device count is part of the key");
        let (f3, _) = fingerprint(
            &g,
            &PlanConfig {
                cost: CostModel::from_spec(&DeviceSpec::v100()),
                ..cfg()
            },
        );
        assert_ne!(f1, f3, "the device cost model is part of the key");
    }

    #[test]
    fn cache_invalidates_across_topologies_and_hits_within_one() {
        // ISSUE 6 satellite: the same graph planned at N=1 must miss when
        // looked up for N=2, and re-running at the same N must hit.
        let mut cache = PlanCache::new(4);
        let g = graph(&[10, 11, 10]);
        let n1 = cfg();
        let n2 = PlanConfig {
            devices: 2,
            ..cfg()
        };

        let (fp1, b1) = fingerprint(&g, &n1);
        assert!(cache.lookup(fp1, &b1).is_none(), "cold N=1 miss");
        cache.insert(fp1, &Planner::new(n1).plan(&g), b1.clone());

        let (fp2, b2) = fingerprint(&g, &n2);
        assert!(
            cache.lookup(fp2, &b2).is_none(),
            "N=2 must not reuse the N=1 plan"
        );
        cache.insert(fp2, &Planner::new(n2).plan(&g), b2.clone());

        assert!(cache.lookup(fp1, &b1).is_some(), "re-run at N=1 hits");
        assert!(cache.lookup(fp2, &b2).is_some(), "re-run at N=2 hits");
    }

    #[test]
    fn barrier_shape_affects_fingerprint() {
        let mk = |waiters: Vec<usize>| {
            ExecGraph::from_events(vec![GraphEvent::Fence {
                signals: vec![0],
                waiters,
            }])
        };
        let (fa, _) = fingerprint(&mk(vec![1]), &cfg());
        let (fb, _) = fingerprint(&mk(vec![2]), &cfg());
        assert_ne!(fa, fb);
    }

    #[test]
    fn hit_rebinds_buffers_onto_current_graph() {
        let mut cache = PlanCache::new(4);
        let ga = graph(&[10, 11, 10]);
        let (fp, binding) = fingerprint(&ga, &cfg());
        let plan = Planner::new(cfg()).plan(&ga);
        cache.insert(fp, &plan, binding);

        let gb = graph(&[77, 93, 77]);
        let (fp_b, binding_b) = fingerprint(&gb, &cfg());
        assert_eq!(fp, fp_b);
        let rebound = cache.lookup(fp_b, &binding_b).expect("cache hit");
        assert_eq!(rebound.launch_count(), plan.launch_count());
        let touched: Vec<BufferId> = rebound
            .steps()
            .iter()
            .filter_map(|s| match s {
                PlanStep::Launch { desc, .. } => Some(desc.reads.iter().map(|&(b, _)| b)),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(
            touched.contains(&BufferId(77)),
            "reads rebound: {touched:?}"
        );
        assert!(
            !touched.contains(&BufferId(10)),
            "stale ids gone: {touched:?}"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn warm_restored_entries_survive_a_post_restore_burst() {
        // ISSUE 10 satellite: restored entries are the oldest in LRU
        // order, so plain LRU would evict the whole warm set before any
        // member of a new-shape burst. Eviction must prefer non-warm
        // victims instead.
        let mut cache = PlanCache::new(4);
        let warm_shapes = [graph(&[1]), graph(&[1, 2])];
        for g in &warm_shapes {
            let (fp, binding) = fingerprint(g, &cfg());
            cache.restore_entry(fp, Planner::new(cfg()).plan(g), binding);
        }
        // A burst of 4 brand-new shapes: more than the remaining space,
        // enough to wipe both warm entries under plain LRU.
        let burst = [
            graph(&[1, 2, 3]),
            graph(&[1, 2, 3, 4]),
            graph(&[1, 2, 3, 4, 5]),
            graph(&[1, 2, 3, 4, 5, 6]),
        ];
        for g in &burst {
            let (fp, binding) = fingerprint(g, &cfg());
            cache.insert(fp, &Planner::new(cfg()).plan(g), binding);
        }
        assert_eq!(cache.len(), 4, "still bounded");
        for g in &warm_shapes {
            let (fp, b) = fingerprint(g, &cfg());
            assert!(
                cache.lookup(fp, &b).is_some(),
                "warm entry evicted by a transient burst"
            );
            assert!(cache.is_warm(fp), "warm mark survives the burst");
        }
        // The burst churned among itself: its two oldest members are the
        // ones that left.
        let (fp_old, b_old) = fingerprint(&burst[0], &cfg());
        assert!(cache.lookup(fp_old, &b_old).is_none());
        let (fp_new, b_new) = fingerprint(&burst[3], &cfg());
        assert!(cache.lookup(fp_new, &b_new).is_some());
    }

    #[test]
    fn all_warm_cache_still_turns_over_by_plain_lru() {
        let mut cache = PlanCache::new(2);
        let shapes = [graph(&[1]), graph(&[1, 2]), graph(&[1, 2, 3])];
        for g in &shapes[..2] {
            let (fp, binding) = fingerprint(g, &cfg());
            cache.restore_entry(fp, Planner::new(cfg()).plan(g), binding);
        }
        let (fp2, b2) = fingerprint(&shapes[2], &cfg());
        cache.insert(fp2, &Planner::new(cfg()).plan(&shapes[2]), b2.clone());
        assert_eq!(cache.len(), 2);
        let (fp0, b0) = fingerprint(&shapes[0], &cfg());
        assert!(
            cache.lookup(fp0, &b0).is_none(),
            "with every entry warm, the oldest warm entry is the victim"
        );
        assert!(cache.lookup(fp2, &b2).is_some());
    }

    #[test]
    fn plan_parallel_matches_sequential_at_every_worker_count() {
        let graphs = [
            graph(&[1, 2, 1]),
            graph(&[3, 4, 5, 3]),
            graph(&[6]),
            graph(&[7, 8, 9, 10, 7, 9]),
        ];
        let refs: Vec<&ExecGraph> = graphs.iter().collect();
        let seq: Vec<ExecPlan> = graphs.iter().map(|g| Planner::new(cfg()).plan(g)).collect();
        for workers in [0, 1, 2, 8] {
            let par = plan_parallel(&cfg(), &refs, workers);
            assert_eq!(par.len(), seq.len());
            for (i, ((plan, _us), expect)) in par.iter().zip(&seq).enumerate() {
                assert_eq!(
                    plan.launch_count(),
                    expect.launch_count(),
                    "graph {i}, workers={workers}"
                );
                assert_eq!(plan.stats(), expect.stats());
                assert_eq!(plan.mem(), expect.mem());
            }
        }
    }

    #[test]
    fn plan_us_ledger_accumulates() {
        let mut cache = PlanCache::new(4);
        assert_eq!(cache.plan_us(), 0);
        cache.note_plan_us(120);
        cache.note_plan_us(30);
        assert_eq!(cache.plan_us(), 150);
    }

    #[test]
    fn miss_and_lru_eviction() {
        let mut cache = PlanCache::new(2);
        let shapes = [graph(&[1]), graph(&[1, 2]), graph(&[1, 2, 3])];
        for g in &shapes {
            let (fp, binding) = fingerprint(g, &cfg());
            assert!(cache.lookup(fp, &binding).is_none());
            let plan = Planner::new(cfg()).plan(g);
            cache.insert(fp, &plan, binding);
        }
        assert_eq!(cache.len(), 2, "bounded at capacity");
        // The first shape was LRU and got evicted; the last two are hits.
        let (fp0, b0) = fingerprint(&shapes[0], &cfg());
        assert!(cache.lookup(fp0, &b0).is_none());
        for g in &shapes[1..] {
            let (fp, b) = fingerprint(g, &cfg());
            assert!(cache.lookup(fp, &b).is_some());
        }
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 2);
    }
}
