//! Binary codec for plan-cache entries — the payload behind the persist
//! layer's `PLAN` record kind.
//!
//! The record framing (magic, version, per-record CRC) lives in
//! [`fides_client::persist`]; this module only encodes the payload,
//! because an [`ExecPlan`] references scheduler and simulator types
//! (`KernelDesc`, `BufferId`) the client crate deliberately does not know.
//!
//! A serialized entry is `(fingerprint, plan, binding)` — exactly what
//! [`PlanCache`](super::PlanCache) holds. Buffer ids in the plan are the
//! *recording-time* ids; they are only meaningful relative to the stored
//! binding, and [`PlanCache::lookup`](super::PlanCache::lookup) rebinds
//! them onto the post-restore graph's fresh buffers through the
//! first-occurrence correspondence. That is what makes a restored plan
//! valid on a brand-new device context.
//!
//! Decoding mirrors the wire layer's hostile-input discipline: every
//! length is bounds-checked before use, allocations are capped, kernel
//! tags and efficiencies are validated, and every failure is a typed
//! [`ClientError`] — never a panic.

use std::collections::HashMap;

use bytes::{Buf, BufMut};
use fides_client::ClientError;
use fides_gpu_sim::{BufferId, KernelDesc, KernelKind};

use super::plan::{ExecPlan, PlanStep, SchedStats};

const STEP_LAUNCH: u8 = 0;
const STEP_FENCE: u8 = 1;
const KIND_NONE: u8 = 0xFF;

fn need(buf: &[u8], bytes: usize, what: &str) -> Result<(), ClientError> {
    if buf.remaining() < bytes {
        return Err(ClientError::Serialization(format!("truncated {what}")));
    }
    Ok(())
}

fn kind_tag(kind: Option<KernelKind>) -> u8 {
    match kind {
        None => KIND_NONE,
        Some(KernelKind::Elementwise) => 0,
        Some(KernelKind::NttPhase1) => 1,
        Some(KernelKind::NttPhase2) => 2,
        Some(KernelKind::InttPhase1) => 3,
        Some(KernelKind::InttPhase2) => 4,
        Some(KernelKind::BaseConv) => 5,
        Some(KernelKind::Automorphism) => 6,
        Some(KernelKind::SwitchModulus) => 7,
        Some(KernelKind::Transfer) => 8,
        Some(KernelKind::Fill) => 9,
    }
}

fn kind_from_tag(tag: u8) -> Result<Option<KernelKind>, ClientError> {
    Ok(match tag {
        KIND_NONE => None,
        0 => Some(KernelKind::Elementwise),
        1 => Some(KernelKind::NttPhase1),
        2 => Some(KernelKind::NttPhase2),
        3 => Some(KernelKind::InttPhase1),
        4 => Some(KernelKind::InttPhase2),
        5 => Some(KernelKind::BaseConv),
        6 => Some(KernelKind::Automorphism),
        7 => Some(KernelKind::SwitchModulus),
        8 => Some(KernelKind::Transfer),
        9 => Some(KernelKind::Fill),
        t => {
            return Err(ClientError::Serialization(format!(
                "invalid kernel kind tag {t}"
            )))
        }
    })
}

fn put_access_list(buf: &mut Vec<u8>, list: &[(BufferId, u64)]) {
    buf.put_u32(list.len() as u32);
    for &(BufferId(id), bytes) in list {
        buf.put_u64_le(id);
        buf.put_u64_le(bytes);
    }
}

fn get_access_list(buf: &mut &[u8]) -> Result<Vec<(BufferId, u64)>, ClientError> {
    need(buf, 4, "access-list header")?;
    let n = buf.get_u32() as usize;
    need(buf, n.saturating_mul(16), "access-list entries")?;
    let mut list = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = buf.get_u64_le();
        let bytes = buf.get_u64_le();
        list.push((BufferId(id), bytes));
    }
    Ok(list)
}

fn put_desc(buf: &mut Vec<u8>, desc: &KernelDesc) {
    buf.put_u8(kind_tag(desc.kind));
    put_access_list(buf, &desc.reads);
    put_access_list(buf, &desc.writes);
    buf.put_u64_le(desc.int32_ops);
    buf.put_f64(desc.access_efficiency);
}

fn get_desc(buf: &mut &[u8]) -> Result<KernelDesc, ClientError> {
    need(buf, 1, "kernel descriptor")?;
    let kind = kind_from_tag(buf.get_u8())?;
    let reads = get_access_list(buf)?;
    let writes = get_access_list(buf)?;
    need(buf, 16, "kernel descriptor tail")?;
    let int32_ops = buf.get_u64_le();
    let access_efficiency = buf.get_f64();
    // The builder asserts this invariant; a decoder must reject instead.
    if !(access_efficiency > 0.0 && access_efficiency <= 1.0) {
        return Err(ClientError::Serialization(format!(
            "kernel access efficiency {access_efficiency} outside (0, 1]"
        )));
    }
    Ok(KernelDesc {
        kind,
        reads,
        writes,
        int32_ops,
        access_efficiency,
    })
}

fn put_stream_list(buf: &mut Vec<u8>, list: &[usize]) {
    buf.put_u32(list.len() as u32);
    for &s in list {
        buf.put_u32(s as u32);
    }
}

fn get_stream_list(buf: &mut &[u8]) -> Result<Vec<usize>, ClientError> {
    need(buf, 4, "stream-list header")?;
    let n = buf.get_u32() as usize;
    need(buf, n.saturating_mul(4), "stream-list entries")?;
    let mut list = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        list.push(buf.get_u32() as usize);
    }
    Ok(list)
}

/// Serializes one plan-cache entry (`fingerprint`, plan, first-occurrence
/// buffer binding) into a `PLAN` record payload.
pub fn encode_plan_entry(fp: u64, plan: &ExecPlan, binding: &[BufferId]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u64_le(fp);
    buf.put_u32(binding.len() as u32);
    for &BufferId(id) in binding {
        buf.put_u64_le(id);
    }
    buf.put_u32(plan.steps.len() as u32);
    for step in &plan.steps {
        match step {
            PlanStep::Launch { stream, desc } => {
                buf.put_u8(STEP_LAUNCH);
                buf.put_u32(*stream as u32);
                put_desc(&mut buf, desc);
            }
            PlanStep::Fence { signals, waiters } => {
                buf.put_u8(STEP_FENCE);
                put_stream_list(&mut buf, signals);
                put_stream_list(&mut buf, waiters);
            }
        }
    }
    for v in [
        plan.stats.graphs,
        plan.stats.recorded_kernels,
        plan.stats.planned_launches,
        plan.stats.fused_kernels,
        plan.stats.plan_cache_hits,
        plan.stats.plan_cache_misses,
    ] {
        buf.put_u64_le(v);
    }
    for v in [
        plan.mem.peak_device_bytes,
        plan.mem.allocations,
        plan.mem.buffers,
    ] {
        buf.put_u64_le(v);
    }
    // Deterministic slot order: snapshots of the same cache byte-compare.
    let mut slots: Vec<(u64, u64)> = plan.slots.iter().map(|(&BufferId(b), &s)| (b, s)).collect();
    slots.sort_unstable();
    buf.put_u32(slots.len() as u32);
    for (b, s) in slots {
        buf.put_u64_le(b);
        buf.put_u64_le(s);
    }
    buf
}

/// Deserializes a `PLAN` record payload back into `(fingerprint, plan,
/// binding)`, ready for
/// [`PlanCache::restore_entry`](super::PlanCache::restore_entry).
///
/// # Errors
///
/// [`ClientError::Serialization`] for truncation, trailing bytes, invalid
/// kernel tags or out-of-range efficiencies — never panics on hostile
/// bytes.
pub fn decode_plan_entry(
    mut payload: &[u8],
) -> Result<(u64, ExecPlan, Vec<BufferId>), ClientError> {
    let buf = &mut payload;
    need(buf, 12, "plan entry header")?;
    let fp = buf.get_u64_le();
    let n_binding = buf.get_u32() as usize;
    need(buf, n_binding.saturating_mul(8), "plan binding")?;
    let mut binding = Vec::with_capacity(n_binding.min(1 << 16));
    for _ in 0..n_binding {
        binding.push(BufferId(buf.get_u64_le()));
    }
    need(buf, 4, "plan step count")?;
    let n_steps = buf.get_u32() as usize;
    let mut steps = Vec::with_capacity(n_steps.min(1 << 16));
    for _ in 0..n_steps {
        need(buf, 1, "plan step tag")?;
        match buf.get_u8() {
            STEP_LAUNCH => {
                need(buf, 4, "launch stream")?;
                let stream = buf.get_u32() as usize;
                let desc = get_desc(buf)?;
                steps.push(PlanStep::Launch { stream, desc });
            }
            STEP_FENCE => {
                let signals = get_stream_list(buf)?;
                let waiters = get_stream_list(buf)?;
                steps.push(PlanStep::Fence { signals, waiters });
            }
            t => {
                return Err(ClientError::Serialization(format!(
                    "invalid plan step tag {t}"
                )))
            }
        }
    }
    need(buf, 6 * 8 + 3 * 8, "plan stats")?;
    let stats = SchedStats {
        graphs: buf.get_u64_le(),
        recorded_kernels: buf.get_u64_le(),
        planned_launches: buf.get_u64_le(),
        fused_kernels: buf.get_u64_le(),
        plan_cache_hits: buf.get_u64_le(),
        plan_cache_misses: buf.get_u64_le(),
    };
    let mem = super::mem::MemPlan {
        peak_device_bytes: buf.get_u64_le(),
        allocations: buf.get_u64_le(),
        buffers: buf.get_u64_le(),
    };
    need(buf, 4, "plan slot count")?;
    let n_slots = buf.get_u32() as usize;
    need(buf, n_slots.saturating_mul(16), "plan slots")?;
    let mut slots = HashMap::with_capacity(n_slots.min(1 << 16));
    for _ in 0..n_slots {
        let b = buf.get_u64_le();
        let s = buf.get_u64_le();
        slots.insert(BufferId(b), s);
    }
    if !buf.is_empty() {
        return Err(ClientError::Serialization(format!(
            "{} trailing bytes after plan entry",
            buf.len()
        )));
    }
    let plan = ExecPlan {
        steps,
        stats,
        mem,
        slots,
    };
    Ok((fp, plan, binding))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{fingerprint, ExecGraph, PlanConfig, Planner};
    use fides_gpu_sim::GraphEvent;

    fn sample_graph() -> ExecGraph {
        ExecGraph::from_events(vec![
            GraphEvent::Launch {
                stream: 0,
                desc: KernelDesc::new(KernelKind::Elementwise)
                    .read(BufferId(10), 4096)
                    .write(BufferId(11), 4096)
                    .ops(1000),
            },
            GraphEvent::Fence {
                signals: vec![0],
                waiters: vec![1],
            },
            GraphEvent::Launch {
                stream: 1,
                desc: KernelDesc::new(KernelKind::NttPhase1)
                    .read(BufferId(11), 8192)
                    .write(BufferId(12), 8192)
                    .ops(5000),
            },
        ])
    }

    #[test]
    fn plan_entry_roundtrips() {
        let cfg = PlanConfig::default();
        let graph = sample_graph();
        let (fp, binding) = fingerprint(&graph, &cfg);
        let plan = Planner::new(cfg).plan(&graph);
        let payload = encode_plan_entry(fp, &plan, &binding);
        let (fp2, plan2, binding2) = decode_plan_entry(&payload).unwrap();
        assert_eq!(fp, fp2);
        assert_eq!(binding, binding2);
        assert_eq!(plan.launch_count(), plan2.launch_count());
        assert_eq!(plan.stats(), plan2.stats());
        assert_eq!(plan.mem(), plan2.mem());
        assert_eq!(payload, encode_plan_entry(fp2, &plan2, &binding2));
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let cfg = PlanConfig::default();
        let graph = sample_graph();
        let (fp, binding) = fingerprint(&graph, &cfg);
        let plan = Planner::new(cfg).plan(&graph);
        let payload = encode_plan_entry(fp, &plan, &binding);
        for cut in 0..payload.len() {
            assert!(
                decode_plan_entry(&payload[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
        let mut garbage = payload.clone();
        garbage.extend_from_slice(&[0u8; 3]);
        assert!(decode_plan_entry(&garbage).is_err(), "trailing bytes error");
    }

    #[test]
    fn bad_efficiency_and_tags_are_typed_errors() {
        // Hand-build a launch whose efficiency is 0: must be rejected, not
        // asserted on.
        let plan = ExecPlan {
            steps: vec![PlanStep::Launch {
                stream: 0,
                desc: KernelDesc {
                    kind: Some(KernelKind::Fill),
                    reads: Vec::new(),
                    writes: Vec::new(),
                    int32_ops: 0,
                    access_efficiency: 1.0,
                },
            }],
            ..ExecPlan::default()
        };
        let mut payload = encode_plan_entry(1, &plan, &[]);
        let eff_at = payload.len() - (6 * 8 + 3 * 8 + 4 + 8);
        payload[eff_at..eff_at + 8].copy_from_slice(&0f64.to_be_bytes());
        assert!(matches!(
            decode_plan_entry(&payload),
            Err(ClientError::Serialization(_))
        ));
    }
}
