//! Multi-device graph partitioning: cutting a recorded dependency DAG
//! across an N-device topology.
//!
//! The single-device scheduler (`dag.rs`) extracts the overlap one card
//! allows; the next order of magnitude comes from scaling *out*. This
//! module takes the same recorded graph, the same unit/edge derivation
//! (`build_units` / `build_edges`), and cuts the DAG across the devices of
//! a [`Topology`]:
//!
//! * **Node weight** — a unit's kernel service demand, priced per device
//!   with that device's calibrated [`CostModel`](super::CostModel) (so a
//!   heterogeneous fleet balances honestly).
//! * **Edge weight** — the bytes a cut edge would move over the modeled
//!   interconnect, priced as `latency + bytes/bandwidth`
//!   ([`Topology::transfer_us`]).
//! * **Placement** — an initial contiguous cost-balanced split in recorded
//!   order (a serve batch records request-by-request, so contiguity keeps
//!   whole requests together), refined by a bounded KL-style pass that
//!   moves units between devices while the `max-load + cut` objective
//!   improves.
//! * **Cut edges** become explicit [`DistStep::Transfer`] steps (the moved
//!   buffers over the shared link) and double as cross-device fences: the
//!   destination stream waits for the transfer, the transfer waits for the
//!   producer stream. Intra-device cross-stream edges become ordinary
//!   plan fences, coalesced per consumer like `dag.rs` emission.
//!
//! The result interleaves per-device [`ExecPlan`] shards with transfers in
//! recorded order. [`DistExecutor`] drives one
//! [`PlanExecutor`](super::PlanExecutor) per device off a **shared host
//! clock**: before a shard segment runs, the shared clock is imposed on
//! its device ([`GpuSim::advance_host_to`](fides_gpu_sim::GpuSim)), and
//! the device's advanced clock is read back after — one submission thread
//! feeding a fleet, which is exactly what the `PlanExecutor` trait was
//! kept pluggable for. Results are bit-identical across device counts by
//! construction: functional math runs at record time, so partitioning
//! changes only simulated timing.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use fides_gpu_sim::{BufferId, GpuCluster, GpuSim};

use super::dag::{build_edges, build_units};
use super::exec::{GpuReplayExecutor, PlanExecutor};
use super::graph::ExecGraph;
use super::mem::MemPlan;
use super::plan::{ExecPlan, PlanConfig, PlanStep, SchedStats};
use super::topo::Topology;

/// One step of a distributed plan, in global issue order.
#[derive(Clone, Debug)]
pub enum DistStep {
    /// Run a shard segment — a standard [`ExecPlan`] — on one device.
    Exec {
        /// Target device index.
        device: usize,
        /// The segment's launches and intra-device fences.
        plan: ExecPlan,
    },
    /// Move a cut edge's data across the shared interconnect; doubles as
    /// the cross-device fence (destination stream waits for completion).
    Transfer {
        /// Producing device.
        src_device: usize,
        /// Producer's stream on the source device.
        src_stream: usize,
        /// Consuming device.
        dst_device: usize,
        /// Consumer's stream on the destination device.
        dst_stream: usize,
        /// Buffers moved (empty for a pure ordering edge — the transfer
        /// then costs only link latency, a cross-device fence).
        buffers: Vec<(BufferId, u64)>,
        /// Total payload bytes.
        bytes: u64,
    },
}

/// Counters describing one partitioned plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DistStats {
    /// Devices the plan targets.
    pub devices: usize,
    /// Kernel nodes recorded in the source graph.
    pub recorded_kernels: u64,
    /// Launches per device (length = `devices`).
    pub launches_per_device: Vec<u64>,
    /// Dependency edges whose endpoints landed on different devices.
    pub cut_edges: u64,
    /// Transfer steps emitted (cut edges after per-consumer dedup).
    pub transfers: u64,
    /// Total bytes the transfers move.
    pub transfer_bytes: u64,
}

/// A dependency DAG cut across N devices: per-device [`ExecPlan`] shards
/// interleaved with explicit interconnect transfers.
#[derive(Clone, Debug)]
pub struct DistPlan {
    steps: Vec<DistStep>,
    stats: DistStats,
    /// Per-device memory plans (liveness over each device's launches).
    mem: Vec<MemPlan>,
}

impl DistPlan {
    /// The steps in global issue order.
    pub fn steps(&self) -> &[DistStep] {
        &self.steps
    }

    /// Counters for this plan.
    pub fn stats(&self) -> &DistStats {
        &self.stats
    }

    /// Per-device memory plans.
    pub fn mem(&self) -> &[MemPlan] {
        &self.mem
    }

    /// Launches across all devices.
    pub fn launch_count(&self) -> usize {
        self.stats.launches_per_device.iter().sum::<u64>() as usize
    }
}

/// Partitions a recorded graph across `topo`'s devices (see the module
/// docs for the algorithm). With one device this degenerates to a single
/// unpartitioned shard.
pub fn partition(graph: &ExecGraph, cfg: &PlanConfig, topo: &Topology) -> DistPlan {
    let nd = topo.num_devices();
    let (units, _barriers) = build_units(graph, cfg);
    let n = units.len();
    let recorded = graph.kernel_count() as u64;
    if n == 0 {
        return DistPlan {
            steps: Vec::new(),
            stats: DistStats {
                devices: nd,
                recorded_kernels: recorded,
                launches_per_device: vec![0; nd],
                ..DistStats::default()
            },
            mem: vec![MemPlan::default(); nd],
        };
    }
    let (preds, _succs) = build_edges(&units);

    // Node weights: per-device service demand under each device's
    // calibrated cost model; the mean drives the initial split targets.
    let models = topo.cost_models();
    let cost: Vec<Vec<f64>> = models
        .iter()
        .map(|m| units.iter().map(|u| m.unit_cost(&u.desc)).collect())
        .collect();
    let avg: Vec<f64> = (0..n)
        .map(|i| cost.iter().map(|c| c[i]).sum::<f64>() / nd as f64)
        .collect();

    // Edge weights: bytes the producer writes that the consumer reads —
    // what a cut at this edge moves over the link.
    let edge_bytes = |p: usize, i: usize| -> u64 {
        units[p]
            .desc
            .writes
            .iter()
            .filter(|&&(b, _)| units[i].desc.reads.iter().any(|&(rb, _)| rb == b))
            .map(|&(_, bytes)| bytes)
            .sum()
    };
    // Incident edges per unit (pred side computed once, mirrored to succ).
    let mut edges: Vec<(usize, usize, u64)> = Vec::new();
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            edges.push((p, i, edge_bytes(p, i)));
        }
    }
    let mut incident: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for &(p, i, b) in &edges {
        incident[p].push((i, b));
        incident[i].push((p, b));
    }

    // Initial placement: contiguous cost-balanced blocks in recorded
    // order. Recorded order groups whole requests/chains together, so the
    // initial cut already falls near natural graph boundaries.
    let total: f64 = avg.iter().sum();
    let mut part = vec![0usize; n];
    let mut acc = 0.0;
    let mut dev = 0usize;
    for i in 0..n {
        if dev + 1 < nd && acc >= total * (dev + 1) as f64 / nd as f64 {
            dev += 1;
        }
        part[i] = dev;
        acc += avg[i];
    }

    // Bounded KL-style refinement: sweep units in order, moving one to the
    // device that most improves `max-load + cut`. Deterministic (fixed
    // sweep order, strict improvement, lowest-index winner on ties).
    let mut load = vec![0.0f64; nd];
    for i in 0..n {
        load[part[i]] += cost[part[i]][i];
    }
    let cut_of = |i: usize, d: usize, part: &[usize]| -> f64 {
        incident[i]
            .iter()
            .filter(|&&(o, _)| part[o] != d)
            .map(|&(_, b)| topo.transfer_us(b))
            .sum()
    };
    if nd > 1 {
        for _pass in 0..4 {
            let mut improved = false;
            for i in 0..n {
                let d0 = part[i];
                let max_load = load.iter().copied().fold(0.0f64, f64::max);
                let base = max_load + cut_of(i, d0, &part);
                let mut best: Option<(f64, usize)> = None;
                for d1 in 0..nd {
                    if d1 == d0 {
                        continue;
                    }
                    let new_max = load
                        .iter()
                        .enumerate()
                        .map(|(d, &l)| {
                            if d == d0 {
                                l - cost[d0][i]
                            } else if d == d1 {
                                l + cost[d1][i]
                            } else {
                                l
                            }
                        })
                        .fold(0.0f64, f64::max);
                    let obj = new_max + cut_of(i, d1, &part);
                    if obj + 1e-9 < base && best.is_none_or(|(b, _)| obj < b) {
                        best = Some((obj, d1));
                    }
                }
                if let Some((_, d1)) = best {
                    load[d0] -= cost[d0][i];
                    load[d1] += cost[d1][i];
                    part[i] = d1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    // Emission in recorded unit order (predecessors always precede their
    // consumers). Per device: recorded streams map round-robin onto
    // device-local streams; intra-device cross-stream edges coalesce into
    // one fence per consumer; cut edges become transfers, deduped per
    // (producer, destination device) for payload and per destination
    // stream for ordering.
    let streams = cfg.num_streams.max(1);
    struct DevState {
        affinity: HashMap<usize, usize>,
        next_stream: usize,
        launched: Vec<usize>,
        sync_mark: Vec<Vec<usize>>,
        all_steps: Vec<PlanStep>,
    }
    let mut devs: Vec<DevState> = (0..nd)
        .map(|_| DevState {
            affinity: HashMap::new(),
            next_stream: 0,
            launched: vec![0; streams],
            sync_mark: vec![vec![0; streams]; streams],
            all_steps: Vec::new(),
        })
        .collect();
    // (device, local stream, index-on-stream) per emitted unit.
    let mut launch_of: Vec<(usize, usize, usize)> = vec![(0, 0, 0); n];
    let mut moved: HashSet<(usize, usize)> = HashSet::new(); // (producer, dst device)
    let mut synced: HashSet<(usize, usize, usize)> = HashSet::new(); // + dst stream

    let mut steps: Vec<DistStep> = Vec::new();
    let mut seg: Vec<PlanStep> = Vec::new();
    let mut seg_dev = part[0];
    let mut cut_edges = 0u64;
    let mut transfers = 0u64;
    let mut transfer_bytes = 0u64;

    fn close_segment(steps: &mut Vec<DistStep>, seg: &mut Vec<PlanStep>, device: usize) {
        if seg.is_empty() {
            return;
        }
        let seg_steps = std::mem::take(seg);
        let launches = seg_steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Launch { .. }))
            .count() as u64;
        steps.push(DistStep::Exec {
            device,
            plan: ExecPlan {
                steps: seg_steps,
                stats: SchedStats {
                    planned_launches: launches,
                    ..SchedStats::default()
                },
                mem: MemPlan::default(),
                slots: Default::default(),
            },
        });
    }

    for i in 0..n {
        let d = part[i];
        let s = {
            let st = &mut devs[d];
            match st.affinity.get(&units[i].rec_stream) {
                Some(&s) => s,
                None => {
                    let s = st.next_stream % streams;
                    st.next_stream += 1;
                    st.affinity.insert(units[i].rec_stream, s);
                    s
                }
            }
        };
        // Cross-device predecessors first: each may close the running
        // segment to interleave a transfer at the right position.
        let mut fence_signals: Vec<usize> = Vec::new();
        for &p in &preds[i] {
            let (pd, ps, pidx) = launch_of[p];
            if pd == d {
                if ps != s && devs[d].sync_mark[s][ps] <= pidx && !fence_signals.contains(&ps) {
                    fence_signals.push(ps);
                }
                continue;
            }
            cut_edges += 1;
            if synced.contains(&(p, d, s)) {
                continue;
            }
            let buffers: Vec<(BufferId, u64)> = if moved.contains(&(p, d)) {
                Vec::new()
            } else {
                units[p]
                    .desc
                    .writes
                    .iter()
                    .filter(|&&(b, _)| units[i].desc.reads.iter().any(|&(rb, _)| rb == b))
                    .copied()
                    .collect()
            };
            let bytes: u64 = buffers.iter().map(|&(_, b)| b).sum();
            close_segment(&mut steps, &mut seg, seg_dev);
            transfers += 1;
            transfer_bytes += bytes;
            moved.insert((p, d));
            synced.insert((p, d, s));
            steps.push(DistStep::Transfer {
                src_device: pd,
                src_stream: ps,
                dst_device: d,
                dst_stream: s,
                buffers,
                bytes,
            });
        }
        if d != seg_dev {
            close_segment(&mut steps, &mut seg, seg_dev);
        }
        seg_dev = d;
        if !fence_signals.is_empty() {
            fence_signals.sort_unstable();
            for &t in &fence_signals {
                devs[d].sync_mark[s][t] = devs[d].launched[t];
            }
            let fence = PlanStep::Fence {
                signals: fence_signals,
                waiters: vec![s],
            };
            seg.push(fence.clone());
            devs[d].all_steps.push(fence);
        }
        launch_of[i] = (d, s, devs[d].launched[s]);
        devs[d].launched[s] += 1;
        let launch = PlanStep::Launch {
            stream: s,
            desc: units[i].desc.clone(),
        };
        seg.push(launch.clone());
        devs[d].all_steps.push(launch);
    }
    close_segment(&mut steps, &mut seg, seg_dev);

    let mem: Vec<MemPlan> = devs
        .iter()
        .map(|d| super::mem::analyze(&d.all_steps, true).0)
        .collect();
    let launches_per_device: Vec<u64> = devs
        .iter()
        .map(|d| d.launched.iter().sum::<usize>() as u64)
        .collect();
    DistPlan {
        steps,
        stats: DistStats {
            devices: nd,
            recorded_kernels: recorded,
            launches_per_device,
            cut_edges,
            transfers,
            transfer_bytes,
        },
        mem,
    }
}

/// Executes a [`DistPlan`] on a [`GpuCluster`], driving one
/// [`GpuReplayExecutor`] per device off a shared host clock (see the
/// module docs).
#[derive(Debug)]
pub struct DistExecutor<'a> {
    cluster: &'a Arc<GpuCluster>,
}

impl<'a> DistExecutor<'a> {
    /// Creates an executor over a cluster.
    pub fn new(cluster: &'a Arc<GpuCluster>) -> Self {
        Self { cluster }
    }

    /// Runs every step in global order. Shard segments execute through a
    /// per-device [`PlanExecutor`]; the shared host clock hops with the
    /// submission thread from device to device; transfers serialize on the
    /// cluster's interconnect and stall the destination stream until the
    /// payload lands.
    pub fn execute(&self, plan: &DistPlan) {
        assert!(
            self.cluster.num_devices() >= plan.stats.devices,
            "plan targets {} devices, cluster has {}",
            plan.stats.devices,
            self.cluster.num_devices()
        );
        let devices: Vec<&Arc<GpuSim>> = (0..plan.stats.devices)
            .map(|d| self.cluster.device(d))
            .collect();
        let mut host = devices
            .iter()
            .map(|d| d.host_clock())
            .fold(0.0f64, f64::max);
        for step in &plan.steps {
            match step {
                DistStep::Exec { device, plan: seg } => {
                    let dev = devices[*device];
                    dev.advance_host_to(host);
                    GpuReplayExecutor::new(dev).execute(seg);
                    host = dev.host_clock();
                }
                DistStep::Transfer {
                    src_device,
                    src_stream,
                    dst_device,
                    dst_stream,
                    bytes,
                    ..
                } => {
                    let ready = devices[*src_device].stream_ready(*src_stream).max(host);
                    let done = self.cluster.transfer(*bytes, ready);
                    devices[*dst_device].wait_stream_until(*dst_stream, done);
                }
            }
        }
        for (d, m) in plan.mem.iter().enumerate() {
            devices[d].record_plan_memory(m.peak_device_bytes, m.allocations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{
        DeviceSpec, ExecMode, GraphEvent, InterconnectSpec, KernelDesc, KernelKind,
    };

    fn topo(n: usize) -> Topology {
        Topology::homogeneous(n, DeviceSpec::rtx_4090(), InterconnectSpec::pcie_gen4())
    }

    fn cfg() -> PlanConfig {
        PlanConfig {
            num_streams: 4,
            ..PlanConfig::default()
        }
    }

    /// A heavy independent kernel (32 MB: far above both the latency floor
    /// and the host submission interval).
    fn heavy(stream: usize, buf: u64) -> GraphEvent {
        GraphEvent::Launch {
            stream,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(buf), 32 << 20)
                .write(BufferId(buf + 1000), 32 << 20)
                .ops(1000),
        }
    }

    #[test]
    fn single_device_runs_everything_on_device_zero() {
        let events: Vec<GraphEvent> = (0..4).map(|i| heavy(i as usize, i)).collect();
        let plan = partition(&ExecGraph::from_events(events), &cfg(), &topo(1));
        assert_eq!(plan.stats().devices, 1);
        assert_eq!(plan.stats().launches_per_device, vec![4]);
        assert_eq!(plan.stats().cut_edges, 0);
        assert_eq!(plan.stats().transfers, 0);
        assert!(plan
            .steps()
            .iter()
            .all(|s| matches!(s, DistStep::Exec { device: 0, .. })));
    }

    #[test]
    fn independent_work_balances_without_transfers() {
        // Eight independent heavy kernels, recorded in two same-cost
        // groups: a two-device split balances 4/4 with zero cut.
        let events: Vec<GraphEvent> = (0..8).map(|i| heavy(i as usize, i * 2)).collect();
        let plan = partition(&ExecGraph::from_events(events), &cfg(), &topo(2));
        assert_eq!(plan.stats().launches_per_device, vec![4, 4]);
        assert_eq!(plan.stats().transfers, 0, "independent work never cut");
    }

    /// A producer→consumer pair carrying a *small* result buffer (4 KB —
    /// cheap to ship over the link relative to the heavy node weights, so
    /// the refinement keeps the cut instead of merging the pair), each
    /// padded with heavy independent work so the balanced contiguous
    /// split lands between them.
    fn producer_consumer_events() -> Vec<GraphEvent> {
        let producer = GraphEvent::Launch {
            stream: 0,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(1), 32 << 20)
                .read(BufferId(2), 32 << 20)
                .write(BufferId(500), 4096)
                .ops(1000),
        };
        let barrier = GraphEvent::Fence {
            signals: vec![0, 1],
            waiters: vec![0, 1],
        };
        let consumer = GraphEvent::Launch {
            stream: 1,
            desc: KernelDesc::new(KernelKind::NttPhase2)
                .read(BufferId(500), 4096)
                .read(BufferId(3), 32 << 20)
                .read(BufferId(4), 32 << 20)
                .write(BufferId(600), 4096)
                .ops(1000),
        };
        let mut events = vec![producer];
        events.extend((0..3).map(|i| heavy(2 + i as usize, 50 + i * 2)));
        events.push(barrier);
        events.push(consumer);
        events.extend((0..3).map(|i| heavy(2 + i as usize, 70 + i * 2)));
        events
    }

    #[test]
    fn cut_edge_emits_transfer_with_payload() {
        // The producer lands on one side of the split, the consumer on the
        // other; shipping the 4 KB result is far cheaper than unbalancing
        // the heavy halves, so the data edge stays cut and a transfer
        // carrying buffer 500 must appear before the consumer's shard.
        let plan = partition(
            &ExecGraph::from_events(producer_consumer_events()),
            &cfg(),
            &topo(2),
        );
        assert_eq!(plan.stats().launches_per_device.iter().sum::<u64>(), 8);
        assert!(plan.stats().cut_edges > 0, "the data edge crosses the cut");
        assert!(plan.stats().transfers > 0, "cut edges need transfers");
        let carries = plan.steps().iter().any(|s| {
            matches!(s, DistStep::Transfer { buffers, .. }
                if buffers.iter().any(|&(b, _)| b == BufferId(500)))
        });
        assert!(carries, "the transfer must carry the cut buffer");
        assert!(plan.stats().transfer_bytes >= 4096);
    }

    #[test]
    fn executor_couples_devices_through_shared_clock_and_link() {
        let plan = partition(
            &ExecGraph::from_events(producer_consumer_events()),
            &cfg(),
            &topo(2),
        );
        let cluster = GpuCluster::homogeneous(
            2,
            DeviceSpec::rtx_4090(),
            ExecMode::CostOnly,
            InterconnectSpec::pcie_gen4(),
        );
        DistExecutor::new(&cluster).execute(&plan);
        let (s0, s1) = (cluster.device(0).stats(), cluster.device(1).stats());
        assert_eq!(
            s0.kernel_launches + s1.kernel_launches,
            plan.launch_count() as u64
        );
        if plan.stats().transfers > 0 {
            let link = cluster.link_stats();
            assert_eq!(link.transfers, plan.stats().transfers);
            assert_eq!(link.bytes, plan.stats().transfer_bytes);
        }
        assert!(cluster.sync_all() > 0.0);
    }

    #[test]
    fn partition_is_deterministic() {
        let mut events = Vec::new();
        for i in 0..24u64 {
            events.push(heavy((i % 6) as usize, i * 2));
            if i % 9 == 8 {
                events.push(GraphEvent::Fence {
                    signals: (0..6).collect(),
                    waiters: (0..6).collect(),
                });
            }
        }
        let g = ExecGraph::from_events(events);
        let a = partition(&g, &cfg(), &topo(4));
        let b = partition(&g, &cfg(), &topo(4));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.steps().len(), b.steps().len());
    }

    #[test]
    fn empty_graph_partitions_empty() {
        let plan = partition(&ExecGraph::from_events(Vec::new()), &cfg(), &topo(2));
        assert_eq!(plan.launch_count(), 0);
        assert_eq!(plan.stats().launches_per_device, vec![0, 0]);
        assert!(plan.steps().is_empty());
    }
}
