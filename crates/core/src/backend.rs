//! Pluggable execution substrates for server-side CKKS.
//!
//! The FIDESlib reproduction originally hard-wired every operation to the
//! simulated-GPU pipeline. The [`EvalBackend`] trait abstracts that
//! substrate so the same encrypted program can run on different engines:
//!
//! * [`GpuSimBackend`] — the paper-faithful path: kernels on the simulated
//!   device ([`fides_gpu_sim`]), with limb batching, stream parallelism,
//!   fusions and the timing ledger.
//! * [`CpuBackend`](crate::cpu_ref::CpuBackend) — a plain-CPU reference
//!   implementation of the identical RNS math, with no kernel or timing
//!   machinery. It exists to (a) cross-check the simulated pipeline
//!   result-for-result and (b) open the multi-backend door the roadmap asks
//!   for (a real CUDA backend would be a third implementation).
//!
//! Backends operate on [`BackendCt`] handles. The variants keep each
//! backend's native representation (device-resident [`Ciphertext`] vs. host
//! limb vectors) without forcing copies through a common format; data only
//! passes through the adapter's [`RawCiphertext`] form at the session
//! boundary (`load` / `store`).
//!
//! Backend methods mirror the raw layered API's semantics exactly — `mul`
//! relinearizes but does **not** rescale, scalar multiplication takes an
//! explicit constant scale, and level alignment is the caller's job. The
//! ergonomic policy layer (auto-rescale, auto-align, operator overloads)
//! lives above this trait in `fides-api`.

use std::fmt;

use fides_client::{RawCiphertext, RawPlaintext};

use crate::adapter;
use crate::boot::Bootstrapper;
use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::cpu_ref::{HostCiphertext, HostPlaintext};
use crate::error::{FidesError, Result};
use crate::keys::EvalKeySet;
use std::sync::Arc;

/// A ciphertext held by some backend.
///
/// The enum keeps each backend's native representation; a handle created by
/// one backend must only be fed back to that backend (methods report
/// [`FidesError::Unsupported`] otherwise).
#[derive(Debug)]
pub enum BackendCt {
    /// Resident on the simulated GPU.
    Device(Ciphertext),
    /// Plain host limb vectors (CPU reference backend).
    Host(HostCiphertext),
}

impl BackendCt {
    /// Current level.
    pub fn level(&self) -> usize {
        match self {
            BackendCt::Device(ct) => ct.level(),
            BackendCt::Host(ct) => ct.level,
        }
    }

    /// Exact message scale.
    pub fn scale(&self) -> f64 {
        match self {
            BackendCt::Device(ct) => ct.scale(),
            BackendCt::Host(ct) => ct.scale,
        }
    }

    /// Packed slot count.
    pub fn slots(&self) -> usize {
        match self {
            BackendCt::Device(ct) => ct.slots(),
            BackendCt::Host(ct) => ct.slots,
        }
    }

    /// Static noise estimate (log2).
    pub fn noise_log2(&self) -> f64 {
        match self {
            BackendCt::Device(ct) => ct.noise_log2(),
            BackendCt::Host(ct) => ct.noise_log2,
        }
    }

    /// Deep copy.
    pub fn duplicate(&self) -> BackendCt {
        match self {
            BackendCt::Device(ct) => BackendCt::Device(ct.duplicate()),
            BackendCt::Host(ct) => BackendCt::Host(ct.clone()),
        }
    }

    /// Overrides the scale metadata (scale *reinterpretation* — changes the
    /// logical value, not the data; bootstrapping uses it around ModRaise).
    pub fn set_scale(&mut self, scale: f64) {
        assert!(scale > 0.0);
        match self {
            BackendCt::Device(ct) => ct.set_scale(scale),
            BackendCt::Host(ct) => ct.scale = scale,
        }
    }
}

/// An encoded plaintext preloaded into some backend's native evaluation-
/// domain representation (the operand of repeated `PtMult`s, e.g. the DFT
/// diagonals of the bootstrap linear transforms).
///
/// Like [`BackendCt`], a handle created by one backend must only be fed back
/// to that backend.
#[derive(Debug)]
pub enum BackendPt {
    /// Resident on the simulated GPU.
    Device(Plaintext),
    /// Plain host limb vectors (CPU reference backend).
    Host(HostPlaintext),
}

impl BackendPt {
    /// Chain index of the top active prime.
    pub fn level(&self) -> usize {
        match self {
            BackendPt::Device(pt) => pt.level(),
            BackendPt::Host(pt) => pt.level,
        }
    }

    /// Exact encoding scale.
    pub fn scale(&self) -> f64 {
        match self {
            BackendPt::Device(pt) => pt.scale(),
            BackendPt::Host(pt) => pt.scale,
        }
    }

    /// Packed slot count.
    pub fn slots(&self) -> usize {
        match self {
            BackendPt::Device(pt) => pt.slots(),
            BackendPt::Host(pt) => pt.slots,
        }
    }
}

/// An execution substrate for server-side CKKS operations.
///
/// Implementations must agree bit-for-bit on ciphertext data for the shared
/// operations (the engine's cross-backend tests enforce agreement to within
/// CKKS approximation error), but are free to differ in cost models,
/// residency, and optional capabilities (`bootstrap`, hoisting).
pub trait EvalBackend: fmt::Debug + Send + Sync {
    /// Short backend identifier (e.g. `"gpu-sim"`, `"cpu-reference"`).
    fn name(&self) -> &'static str;

    /// Maximum level `L` of the modulus chain.
    fn max_level(&self) -> usize;

    /// Fresh-encryption scale `Δ`.
    fn fresh_scale(&self) -> f64;

    /// The FLEXIBLEAUTO-style standard scale at `level`.
    fn standard_scale(&self, level: usize) -> f64;

    /// The scaling prime `q_level`.
    fn modulus_value(&self, level: usize) -> u64;

    /// Uploads a client ciphertext.
    fn load(&self, raw: &RawCiphertext) -> Result<BackendCt>;

    /// Downloads a ciphertext for client decryption.
    fn store(&self, ct: &BackendCt) -> Result<RawCiphertext>;

    /// HAdd.
    fn add(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt>;

    /// HSub.
    fn sub(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt>;

    /// Negation.
    fn negate(&self, a: &BackendCt) -> Result<BackendCt>;

    /// ScalarAdd (exact, no level consumed).
    fn add_scalar(&self, a: &BackendCt, c: f64) -> Result<BackendCt>;

    /// PtAdd of a coefficient-domain encoded plaintext.
    fn add_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt>;

    /// PtMult of a coefficient-domain encoded plaintext (not rescaled).
    fn mul_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt>;

    /// HMult with relinearization (not rescaled).
    fn mul(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt>;

    /// HSquare with relinearization (not rescaled).
    fn square(&self, a: &BackendCt) -> Result<BackendCt>;

    /// ScalarMult with an explicit constant scale (not rescaled).
    fn mul_scalar_at(&self, a: &BackendCt, c: f64, const_scale: f64) -> Result<BackendCt>;

    /// Exact small-integer multiplication (no scale change).
    fn mul_int(&self, a: &BackendCt, k: i64) -> Result<BackendCt>;

    /// Rescale in place: drops the top prime, dividing the scale by it.
    fn rescale(&self, a: &mut BackendCt) -> Result<()>;

    /// LevelReduce in place (no rescaling).
    fn drop_to_level(&self, a: &mut BackendCt, level: usize) -> Result<()>;

    /// HRotate by `k` slots (left for positive `k`).
    fn rotate(&self, a: &BackendCt, k: i32) -> Result<BackendCt>;

    /// HConjugate.
    fn conjugate(&self, a: &BackendCt) -> Result<BackendCt>;

    /// Rotations by every shift in `shifts`. Backends with Halevi–Shoup
    /// hoisting share the ModUp across shifts; the default loops.
    ///
    /// Hoisting is bit-identical to per-shift rotation (the automorphism
    /// commutes with the digit decomposition), so implementations are free
    /// to choose either.
    fn hoisted_rotations(&self, a: &BackendCt, shifts: &[i32]) -> Result<Vec<BackendCt>> {
        shifts.iter().map(|&k| self.rotate(a, k)).collect()
    }

    /// Whether operations compute real ciphertext data (`false` for
    /// cost-only simulation, where only the kernel schedule is modelled).
    fn is_functional(&self) -> bool {
        true
    }

    /// Preloads a client-encoded (coefficient-domain) plaintext into the
    /// backend's native evaluation-domain form, for repeated
    /// [`EvalBackend::mul_plain_pre`] application.
    ///
    /// # Errors
    ///
    /// [`FidesError::DomainMismatch`] for evaluation-domain input,
    /// [`FidesError::LevelOutOfRange`] beyond the chain.
    fn load_plain(&self, raw: &RawPlaintext) -> Result<BackendPt>;

    /// Backend-native placeholder plaintext: correct shape and metadata, no
    /// data. Used by cost-only runs, where kernels are data-oblivious.
    ///
    /// # Errors
    ///
    /// [`FidesError::Unsupported`] on backends without a cost-only mode.
    fn placeholder_plain(&self, _level: usize, _scale: f64, _slots: usize) -> Result<BackendPt> {
        Err(FidesError::Unsupported(format!(
            "placeholder plaintexts on the {} backend",
            self.name()
        )))
    }

    /// PtMult of a preloaded plaintext (not rescaled). The plaintext must
    /// sit at the ciphertext's level.
    ///
    /// # Errors
    ///
    /// [`FidesError::LevelMismatch`], or a handle from another backend.
    fn mul_plain_pre(&self, a: &BackendCt, pt: &BackendPt) -> Result<BackendCt>;

    /// ModRaise: extends a level-0 ciphertext to the full chain by centered
    /// modulus switching of its coefficients, turning the plaintext into
    /// `t = m + q_0·I` (the entry step of bootstrapping).
    ///
    /// # Errors
    ///
    /// [`FidesError::LevelMismatch`] unless the input is at level 0.
    fn mod_raise(&self, a: &BackendCt) -> Result<BackendCt>;

    /// Exact multiplication by the imaginary unit (`PtMult` by the monomial
    /// `X^{N/2}`; no scale change, no level consumed).
    ///
    /// # Errors
    ///
    /// A handle from another backend.
    fn mul_by_i(&self, a: &BackendCt) -> Result<BackendCt>;

    /// Bootstrap: refresh an exhausted ciphertext. Optional capability.
    ///
    /// # Errors
    ///
    /// [`FidesError::Unsupported`] unless the backend was configured with
    /// bootstrapping material.
    fn bootstrap(&self, _a: &BackendCt) -> Result<BackendCt> {
        Err(FidesError::Unsupported(format!(
            "bootstrapping on the {} backend",
            self.name()
        )))
    }

    /// Minimum level of bootstrap output, when bootstrapping is available.
    fn min_bootstrap_level(&self) -> Option<usize> {
        None
    }

    /// Human-readable execution-device name, when the backend models one.
    fn device_name(&self) -> Option<String> {
        None
    }

    /// Simulated-device statistics, for backends with a timing ledger.
    fn sim_stats(&self) -> Option<fides_gpu_sim::SimStats> {
        None
    }

    /// Simulated-device makespan in µs (device-wide sync), when timed.
    fn sync_time_us(&self) -> Option<f64> {
        None
    }

    /// Opens a deferred-execution graph region: operations issued until
    /// [`EvalBackend::graph_end`] record into one kernel graph, so the
    /// scheduling pass can fuse and stream across op boundaries. Returns
    /// `false` for backends without graph execution (then `graph_end` must
    /// not be called).
    fn graph_begin(&self) -> bool {
        false
    }

    /// Closes a graph region opened by [`EvalBackend::graph_begin`],
    /// planning and executing the recorded graph.
    fn graph_end(&self) {}

    /// Closes a graph region discarding its recording (the unwind path).
    fn graph_abort(&self) {}

    /// Scheduling-pass counters, for backends running the graph engine.
    fn sched_stats(&self) -> Option<crate::sched::SchedStats> {
        None
    }
}

/// The paper-faithful backend: every operation runs as kernels on the
/// simulated GPU through the raw layered API.
#[derive(Debug)]
pub struct GpuSimBackend {
    ctx: Arc<CkksContext>,
    keys: EvalKeySet,
    boot: Option<Bootstrapper>,
}

impl GpuSimBackend {
    /// Wraps a server context and its loaded evaluation keys.
    pub fn new(ctx: Arc<CkksContext>, keys: EvalKeySet) -> Self {
        Self {
            ctx,
            keys,
            boot: None,
        }
    }

    /// Attaches precomputed bootstrapping material.
    pub fn with_bootstrapper(mut self, boot: Bootstrapper) -> Self {
        self.boot = Some(boot);
        self
    }

    /// The underlying server context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// The loaded evaluation keys.
    pub fn keys(&self) -> &EvalKeySet {
        &self.keys
    }

    fn device<'a>(&self, ct: &'a BackendCt) -> Result<&'a Ciphertext> {
        match ct {
            BackendCt::Device(c) => Ok(c),
            BackendCt::Host(_) => Err(FidesError::Unsupported(
                "host ciphertext handed to the gpu-sim backend".into(),
            )),
        }
    }

    fn device_mut<'a>(&self, ct: &'a mut BackendCt) -> Result<&'a mut Ciphertext> {
        match ct {
            BackendCt::Device(c) => Ok(c),
            BackendCt::Host(_) => Err(FidesError::Unsupported(
                "host ciphertext handed to the gpu-sim backend".into(),
            )),
        }
    }
}

impl EvalBackend for GpuSimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn max_level(&self) -> usize {
        self.ctx.max_level()
    }

    fn fresh_scale(&self) -> f64 {
        self.ctx.fresh_scale()
    }

    fn standard_scale(&self, level: usize) -> f64 {
        self.ctx.standard_scale(level)
    }

    fn modulus_value(&self, level: usize) -> u64 {
        self.ctx.moduli_q()[level].value()
    }

    fn load(&self, raw: &RawCiphertext) -> Result<BackendCt> {
        Ok(BackendCt::Device(adapter::load_ciphertext(&self.ctx, raw)?))
    }

    fn store(&self, ct: &BackendCt) -> Result<RawCiphertext> {
        Ok(adapter::store_ciphertext(self.device(ct)?))
    }

    fn add(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.add(self.device(b)?)?))
    }

    fn sub(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.sub(self.device(b)?)?))
    }

    fn negate(&self, a: &BackendCt) -> Result<BackendCt> {
        let mut out = self.device(a)?.duplicate();
        out.negate_assign();
        Ok(BackendCt::Device(out))
    }

    fn add_scalar(&self, a: &BackendCt, c: f64) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.add_scalar(c)))
    }

    fn add_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt> {
        let dev_pt = adapter::load_plaintext(&self.ctx, pt)?;
        Ok(BackendCt::Device(self.device(a)?.add_plain(&dev_pt)?))
    }

    fn mul_plain(&self, a: &BackendCt, pt: &RawPlaintext) -> Result<BackendCt> {
        let dev_pt = adapter::load_plaintext(&self.ctx, pt)?;
        Ok(BackendCt::Device(self.device(a)?.mul_plain(&dev_pt)?))
    }

    fn mul(&self, a: &BackendCt, b: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(
            self.device(a)?.mul(self.device(b)?, &self.keys)?,
        ))
    }

    fn square(&self, a: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.square(&self.keys)?))
    }

    fn mul_scalar_at(&self, a: &BackendCt, c: f64, const_scale: f64) -> Result<BackendCt> {
        Ok(BackendCt::Device(
            self.device(a)?.mul_scalar_at(c, const_scale),
        ))
    }

    fn mul_int(&self, a: &BackendCt, k: i64) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.mul_int(k)))
    }

    fn rescale(&self, a: &mut BackendCt) -> Result<()> {
        self.device_mut(a)?.rescale_in_place()
    }

    fn drop_to_level(&self, a: &mut BackendCt, level: usize) -> Result<()> {
        self.device_mut(a)?.drop_to_level(level)
    }

    fn rotate(&self, a: &BackendCt, k: i32) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.rotate(k, &self.keys)?))
    }

    fn conjugate(&self, a: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.conjugate(&self.keys)?))
    }

    fn hoisted_rotations(&self, a: &BackendCt, shifts: &[i32]) -> Result<Vec<BackendCt>> {
        Ok(self
            .device(a)?
            .hoisted_rotations(shifts, &self.keys)?
            .into_iter()
            .map(BackendCt::Device)
            .collect())
    }

    fn is_functional(&self) -> bool {
        self.ctx.gpu().is_functional()
    }

    fn load_plain(&self, raw: &RawPlaintext) -> Result<BackendPt> {
        Ok(BackendPt::Device(adapter::load_plaintext(&self.ctx, raw)?))
    }

    fn placeholder_plain(&self, level: usize, scale: f64, slots: usize) -> Result<BackendPt> {
        Ok(BackendPt::Device(adapter::placeholder_plaintext(
            &self.ctx, level, scale, slots,
        )))
    }

    fn mul_plain_pre(&self, a: &BackendCt, pt: &BackendPt) -> Result<BackendCt> {
        let pt = match pt {
            BackendPt::Device(p) => p,
            BackendPt::Host(_) => {
                return Err(FidesError::Unsupported(
                    "host plaintext handed to the gpu-sim backend".into(),
                ))
            }
        };
        Ok(BackendCt::Device(self.device(a)?.mul_plain(pt)?))
    }

    fn mod_raise(&self, a: &BackendCt) -> Result<BackendCt> {
        let ct = self.device(a)?;
        if ct.level() != 0 {
            return Err(FidesError::LevelMismatch {
                left: ct.level(),
                right: 0,
            });
        }
        Ok(BackendCt::Device(crate::boot::raise_device(ct)))
    }

    fn mul_by_i(&self, a: &BackendCt) -> Result<BackendCt> {
        Ok(BackendCt::Device(self.device(a)?.mul_by_i()))
    }

    fn bootstrap(&self, a: &BackendCt) -> Result<BackendCt> {
        let boot = self.boot.as_ref().ok_or_else(|| {
            FidesError::Unsupported(
                "bootstrapping: engine was built without .bootstrap_slots(..)".into(),
            )
        })?;
        boot.bootstrap(self, a)
    }

    fn min_bootstrap_level(&self) -> Option<usize> {
        self.boot.as_ref().map(|b| b.min_output_level())
    }

    fn device_name(&self) -> Option<String> {
        Some(self.ctx.gpu().spec().name.to_string())
    }

    fn sim_stats(&self) -> Option<fides_gpu_sim::SimStats> {
        Some(self.ctx.gpu().stats())
    }

    fn sync_time_us(&self) -> Option<f64> {
        Some(self.ctx.gpu().sync())
    }

    fn graph_begin(&self) -> bool {
        self.ctx.graph_scope_begin()
    }

    fn graph_end(&self) {
        self.ctx.graph_scope_end();
    }

    fn graph_abort(&self) {
        self.ctx.graph_scope_abort();
    }

    fn sched_stats(&self) -> Option<crate::sched::SchedStats> {
        Some(self.ctx.sched_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;
    use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

    fn backend() -> GpuSimBackend {
        let ctx = CkksContext::new(
            CkksParameters::toy(),
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly),
        );
        GpuSimBackend::new(ctx, EvalKeySet::new())
    }

    #[test]
    fn metadata_passthrough() {
        let b = backend();
        assert_eq!(b.name(), "gpu-sim");
        assert_eq!(b.max_level(), 4);
        assert_eq!(b.fresh_scale(), 2f64.powi(40));
        assert!(b.sim_stats().is_some());
        assert!(b.min_bootstrap_level().is_none());
    }

    #[test]
    fn bootstrap_without_material_is_typed_error() {
        let b = backend();
        let ct = BackendCt::Device(Ciphertext::zero(b.context(), 0, 1.0, 8));
        assert!(matches!(b.bootstrap(&ct), Err(FidesError::Unsupported(_))));
    }

    #[test]
    fn host_handle_rejected() {
        let b = backend();
        let host = BackendCt::Host(crate::cpu_ref::HostCiphertext {
            c0: vec![],
            c1: vec![],
            level: 0,
            scale: 1.0,
            slots: 1,
            noise_log2: 0.0,
        });
        assert!(matches!(b.store(&host), Err(FidesError::Unsupported(_))));
    }
}
