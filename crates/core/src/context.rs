//! The server-side crypto context (`CKKS::Context` in FIDESlib).
//!
//! Holds every precomputed table the GPU kernels consume: NTT tables per
//! prime, base-conversion matrices per (level, digit), rescale and ModDown
//! scalars, the digit partition, evaluation-domain automorphism permutations
//! and the standard-scale ladder. The paper stores these in CUDA constant /
//! global memory behind a singleton (§III-E); the Rust port shares one
//! immutable context through an [`Arc`], which models the same "precompute
//! once at context creation" discipline while staying re-entrant.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use fides_client::RawParams;
use fides_gpu_sim::{GpuSim, VectorGpu};
use fides_math::{build_eval_permutation, Modulus, Ntt2d, NttTable, ShoupPrecomp};
use fides_rns::{product_inv_mod, product_mod, BaseConverter, DigitPartition};
use parking_lot::Mutex;

use crate::params::CkksParameters;
use crate::sched::{
    fingerprint, CostModel, ExecGraph, GpuReplayExecutor, PlanCache, PlanConfig, PlanExecutor,
    Planner, SchedStats,
};

/// Index into the combined modulus chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChainIdx {
    /// Scaling prime `q_i`.
    Q(usize),
    /// Auxiliary prime `p_k`.
    P(usize),
}

/// ModUp tables for one (level, digit) pair.
#[derive(Debug)]
pub(crate) struct ModUpTables {
    /// Conversion from the active digit primes to the complement.
    pub(crate) conv: BaseConverter,
    /// Chain `q` indices of the conversion destination, in destination
    /// order (the `p` limbs follow in natural order).
    pub(crate) dst_q_indices: Vec<usize>,
}

/// Evaluation-domain automorphism permutation, resident on the device.
#[derive(Debug)]
pub struct EvalPerm {
    /// Host copy used by kernel bodies.
    pub host: Vec<u32>,
    /// Device residency (gives the table a BufferId for the L2 model).
    pub dev: VectorGpu<u32>,
}

/// Default number of CUDA streams the server cycles kernel batches over
/// (override per session with
/// [`CkksParameters::with_num_streams`](crate::CkksParameters::with_num_streams)).
pub const NUM_STREAMS: usize = 16;

/// The immutable server context.
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParameters,
    raw: RawParams,
    gpu: Arc<GpuSim>,
    moduli_q: Vec<Modulus>,
    moduli_p: Vec<Modulus>,
    ntt_q: Vec<Ntt2d>,
    ntt_p: Vec<Ntt2d>,
    partition: DigitPartition,
    /// `[level][digit]` ModUp conversion tables.
    mod_up: Vec<Vec<ModUpTables>>,
    /// `[level]`: conversion `P → q_0..q_level` for ModDown.
    mod_down: Vec<BaseConverter>,
    /// `[l][i]`: `q_l^{-1} mod q_i` for `i < l` (Rescale).
    rescale_inv: Vec<Vec<ShoupPrecomp>>,
    /// `[i]`: `P^{-1} mod q_i` (ModDown).
    p_inv_mod_q: Vec<ShoupPrecomp>,
    /// `[i]`: `P mod q_i`.
    p_mod_q: Vec<u64>,
    /// FLEXIBLEAUTO-style standard scale per level.
    standard_scale: Vec<f64>,
    /// Cache of evaluation-domain automorphism permutations by Galois
    /// element.
    perms: Mutex<HashMap<usize, Arc<EvalPerm>>>,
    /// `NTT(X^{N/2}) mod q_i` — the imaginary-unit monomial used by
    /// bootstrapping's real/imaginary extraction.
    monomial_half: Vec<Vec<u64>>,
    /// Cumulative scheduling-pass counters (graphs planned, kernels fused).
    sched_ledger: Mutex<SchedStats>,
    /// Bounded LRU of finished plans, keyed by structural graph
    /// fingerprint: repeated `eval_scope` bodies replay without planning.
    plan_cache: Mutex<PlanCache>,
}

impl CkksContext {
    /// Builds the full context (all precomputation of §III-E happens here).
    pub fn new(params: CkksParameters, gpu: Arc<GpuSim>) -> Arc<Self> {
        let raw = params.to_raw();
        Self::from_raw(params, raw, gpu)
    }

    /// Builds the context from an explicit prime chain (used when the client
    /// dictated the chain).
    pub fn from_raw(params: CkksParameters, raw: RawParams, gpu: Arc<GpuSim>) -> Arc<Self> {
        let n = raw.n();
        let moduli_q: Vec<Modulus> = raw.moduli_q.iter().map(|&q| Modulus::new(q)).collect();
        let moduli_p: Vec<Modulus> = raw.moduli_p.iter().map(|&p| Modulus::new(p)).collect();
        let ntt_q: Vec<Ntt2d> = moduli_q
            .iter()
            .map(|&m| Ntt2d::new(NttTable::new(n, m)))
            .collect();
        let ntt_p: Vec<Ntt2d> = moduli_p
            .iter()
            .map(|&m| Ntt2d::new(NttTable::new(n, m)))
            .collect();
        let num_q = moduli_q.len();
        let partition = DigitPartition::new(num_q, raw.dnum);

        // ModUp converters per (level, digit).
        let mut mod_up = Vec::with_capacity(num_q);
        for level in 0..num_q {
            let digits = partition.digits_at_level(level);
            let mut per_digit = Vec::with_capacity(digits);
            for j in 0..digits {
                let src_range = partition.digit_range_at_level(j, level);
                let src: Vec<Modulus> = src_range.clone().map(|i| moduli_q[i]).collect();
                let dst_q_indices: Vec<usize> =
                    (0..=level).filter(|i| !src_range.contains(i)).collect();
                let mut dst: Vec<Modulus> = dst_q_indices.iter().map(|&i| moduli_q[i]).collect();
                dst.extend(moduli_p.iter().copied());
                per_digit.push(ModUpTables {
                    conv: BaseConverter::new(&src, &dst),
                    dst_q_indices,
                });
            }
            mod_up.push(per_digit);
        }

        // ModDown converters P → Q_l.
        let mod_down: Vec<BaseConverter> = (0..num_q)
            .map(|level| BaseConverter::new(&moduli_p, &moduli_q[..=level]))
            .collect();

        // Rescale scalars.
        let rescale_inv: Vec<Vec<ShoupPrecomp>> = (0..num_q)
            .map(|l| {
                (0..l)
                    .map(|i| {
                        let m = &moduli_q[i];
                        ShoupPrecomp::new(m.inv_mod(m.reduce_u64(moduli_q[l].value())), m)
                    })
                    .collect()
            })
            .collect();

        let p_values = raw.moduli_p.clone();
        let p_inv_mod_q: Vec<ShoupPrecomp> = moduli_q
            .iter()
            .map(|m| ShoupPrecomp::new(product_inv_mod(&p_values, m), m))
            .collect();
        let p_mod_q: Vec<u64> = moduli_q.iter().map(|m| product_mod(&p_values, m)).collect();

        // Standard (FLEXIBLEAUTO-style) scale ladder.
        let mut standard_scale = vec![0.0f64; num_q];
        let delta = raw.scale();
        standard_scale[num_q - 1] = delta;
        for l in (0..num_q - 1).rev() {
            let s_next = standard_scale[l + 1];
            standard_scale[l] = s_next * s_next / moduli_q[l + 1].value() as f64;
        }

        // NTT(X^{N/2}) per q prime.
        let monomial_half: Vec<Vec<u64>> = ntt_q
            .iter()
            .map(|t| {
                let mut v = vec![0u64; n];
                v[n / 2] = 1;
                t.table().forward_inplace(&mut v);
                v
            })
            .collect();

        Arc::new(Self {
            params,
            raw,
            gpu,
            moduli_q,
            moduli_p,
            ntt_q,
            ntt_p,
            partition,
            mod_up,
            mod_down,
            rescale_inv,
            p_inv_mod_q,
            p_mod_q,
            standard_scale,
            perms: Mutex::new(HashMap::new()),
            monomial_half,
            sched_ledger: Mutex::new(SchedStats::default()),
            plan_cache: Mutex::new(PlanCache::default()),
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParameters {
        &self.params
    }

    /// The shared client/server parameter description.
    pub fn raw_params(&self) -> &RawParams {
        &self.raw
    }

    /// The simulated device.
    pub fn gpu(&self) -> &Arc<GpuSim> {
        &self.gpu
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.raw.n()
    }

    /// Maximum level `L`.
    pub fn max_level(&self) -> usize {
        self.raw.max_level()
    }

    /// Number of auxiliary primes `α`.
    pub fn alpha(&self) -> usize {
        self.moduli_p.len()
    }

    /// Scaling moduli.
    pub fn moduli_q(&self) -> &[Modulus] {
        &self.moduli_q
    }

    /// Auxiliary moduli.
    pub fn moduli_p(&self) -> &[Modulus] {
        &self.moduli_p
    }

    /// The digit partition.
    pub fn partition(&self) -> &DigitPartition {
        &self.partition
    }

    /// Modulus for a chain index.
    pub fn modulus(&self, c: ChainIdx) -> &Modulus {
        match c {
            ChainIdx::Q(i) => &self.moduli_q[i],
            ChainIdx::P(k) => &self.moduli_p[k],
        }
    }

    /// NTT tables for a chain index.
    pub fn ntt(&self, c: ChainIdx) -> &Ntt2d {
        match c {
            ChainIdx::Q(i) => &self.ntt_q[i],
            ChainIdx::P(k) => &self.ntt_p[k],
        }
    }

    /// The standard scale `σ_ℓ` the FLEXIBLEAUTO-style ladder assigns to
    /// `level`.
    pub fn standard_scale(&self, level: usize) -> f64 {
        self.standard_scale[level]
    }

    /// Fresh-encryption scale `Δ`.
    pub fn fresh_scale(&self) -> f64 {
        self.raw.scale()
    }

    pub(crate) fn mod_up_tables(&self, level: usize, digit: usize) -> &ModUpTables {
        &self.mod_up[level][digit]
    }

    pub(crate) fn mod_down_conv(&self, level: usize) -> &BaseConverter {
        &self.mod_down[level]
    }

    pub(crate) fn rescale_scalar(&self, l: usize, i: usize) -> &ShoupPrecomp {
        &self.rescale_inv[l][i]
    }

    pub(crate) fn p_inv_mod_q(&self, i: usize) -> &ShoupPrecomp {
        &self.p_inv_mod_q[i]
    }

    /// `P mod q_i`.
    pub fn p_mod_q(&self, i: usize) -> u64 {
        self.p_mod_q[i]
    }

    /// `NTT(X^{N/2})` for prime `q_i` (the "multiply by i" monomial).
    pub(crate) fn monomial_half(&self, i: usize) -> &[u64] {
        &self.monomial_half[i]
    }

    /// The cached evaluation-domain permutation for Galois element `g`.
    pub fn eval_perm(&self, g: usize) -> Arc<EvalPerm> {
        let mut cache = self.perms.lock();
        if let Some(p) = cache.get(&g) {
            return Arc::clone(p);
        }
        let host = build_eval_permutation(self.n(), g);
        let mut dev = VectorGpu::<u32>::new(&self.gpu, host.len());
        dev.copy_from_slice(&host);
        let entry = Arc::new(EvalPerm { host, dev });
        cache.insert(g, Arc::clone(&entry));
        entry
    }

    /// int32 ops of one NTT phase over one limb, scaled by the configured
    /// radix cost factor.
    pub(crate) fn ntt_phase_ops_scaled(&self) -> u64 {
        (crate::kernels::ntt_phase_ops(self.n()) as f64 * self.params.ntt_op_factor) as u64
    }

    /// Limb-batch ranges over `count` limbs (§III-F.1).
    pub fn batch_ranges(&self, count: usize) -> Vec<Range<usize>> {
        let b = self.params.limb_batch.max(1);
        (0..count.div_ceil(b))
            .map(|k| (k * b)..((k + 1) * b).min(count))
            .collect()
    }

    /// Stream assignment for batch `k` (round-robin over the configured
    /// stream count).
    pub fn stream_for_batch(&self, k: usize) -> usize {
        k % self.params.num_streams.max(1)
    }

    /// Synchronizes every stream used by batched kernels (cross-limb
    /// dependency barrier). Inside a scheduled region this records a graph
    /// barrier instead of fencing immediately.
    pub fn sync_batch_streams(&self) {
        let streams: Vec<usize> = (0..self.params.num_streams.max(1)).collect();
        self.gpu.fence(&streams, &streams);
    }

    /// Runs `f` as one scheduled region of the stream-graph engine: kernel
    /// launches inside `f` are recorded into an [`ExecGraph`] instead of
    /// timed, then a planning pass fuses elementwise chains and assigns
    /// streams, and the resulting plan replays onto the device before this
    /// returns. Regions nest — inner regions contribute their kernels to the
    /// outermost graph, so wrapping a whole circuit fuses across op
    /// boundaries.
    ///
    /// With [`CkksParameters::graph_exec`](crate::CkksParameters) off, `f`
    /// runs with the legacy eager dispatch. Capture is per-thread (see
    /// [`GpuSim::begin_capture`]); if `f` unwinds, the region is closed and
    /// its recording discarded rather than leaked.
    pub fn scheduled<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.graph_scope_begin() {
            return f();
        }
        // Close-on-unwind guard: a panicking op must not leave the capture
        // region open (every later launch would record forever).
        struct CloseGuard<'a> {
            ctx: &'a CkksContext,
            armed: bool,
        }
        impl Drop for CloseGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.ctx.graph_scope_abort();
                }
            }
        }
        let mut guard = CloseGuard {
            ctx: self,
            armed: true,
        };
        let r = f();
        guard.armed = false;
        self.graph_scope_end();
        r
    }

    /// Opens a scheduled region without a closure (for callers holding
    /// borrows a closure cannot capture, e.g. the engine's batch API).
    /// Returns `false` when graph execution is disabled — in that case
    /// [`Self::graph_scope_end`] must not be called.
    pub fn graph_scope_begin(&self) -> bool {
        if !self.params.graph_exec {
            return false;
        }
        self.gpu.begin_capture();
        true
    }

    /// Closes a scheduled region opened by [`Self::graph_scope_begin`]. The
    /// outermost close plans and replays the recorded graph; nested closes
    /// (and closes from threads that own no capture) are no-ops.
    ///
    /// Planning consults the context's [`PlanCache`] first: a region whose
    /// structural fingerprint matches an already-planned graph (same op
    /// descriptors, streams, barrier shapes and buffer aliasing — buffer
    /// *identities* are rebound) replays the cached plan with zero
    /// planning work. Hits and misses land in [`Self::sched_stats`] and
    /// the device ledger.
    pub fn graph_scope_end(&self) {
        let events = self.gpu.end_capture();
        if events.is_empty() {
            return;
        }
        let graph = ExecGraph::from_events(events);
        let cfg = self.plan_config();
        let (fp, binding) = fingerprint(&graph, &cfg);
        let (plan, hit) = {
            let mut cache = self.plan_cache.lock();
            match cache.lookup(fp, &binding) {
                Some(plan) => (plan, true),
                None => {
                    let plan = Planner::new(cfg).plan(&graph);
                    cache.insert(fp, &plan, binding);
                    (plan, false)
                }
            }
        };
        self.gpu.record_plan_cache(hit);
        GpuReplayExecutor::new(&self.gpu).execute(&plan);
        let mut ledger = self.sched_ledger.lock();
        ledger.absorb(plan.stats());
        if hit {
            ledger.plan_cache_hits += 1;
        } else {
            ledger.plan_cache_misses += 1;
        }
    }

    /// Closes a scheduled region **discarding** its recording (no plan, no
    /// replay) — the unwind path, where replaying timing for work that
    /// panicked midway would be meaningless.
    pub fn graph_scope_abort(&self) {
        let _ = self.gpu.end_capture();
    }

    /// The planning configuration this context schedules with: fusion and
    /// stream knobs from the parameters, plus a [`CostModel`] calibrated
    /// from the *active* device spec (not hard-coded constants) and the
    /// configured device count — both feed the plan-cache fingerprint, so
    /// changing the device or the topology invalidates cached plans.
    pub fn plan_config(&self) -> PlanConfig {
        PlanConfig {
            fuse_elementwise: self.params.fusion.elementwise,
            num_streams: self.params.num_streams,
            dep_schedule: self.params.sched_v2,
            cost: CostModel::from_spec(&self.gpu.spec()),
            devices: self.params.num_devices,
            ..PlanConfig::default()
        }
    }

    /// Snapshot of the cumulative scheduling counters.
    pub fn sched_stats(&self) -> SchedStats {
        *self.sched_ledger.lock()
    }

    /// Clears the scheduling counters.
    pub fn reset_sched_stats(&self) {
        *self.sched_ledger.lock() = SchedStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_gpu_sim::{DeviceSpec, ExecMode};

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParameters::toy(),
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional),
        )
    }

    #[test]
    fn context_tables_consistent() {
        let c = ctx();
        assert_eq!(c.max_level(), 4);
        assert_eq!(c.moduli_q().len(), 5);
        assert_eq!(c.alpha(), 3); // ceil(5/2)
                                  // Rescale scalar is the inverse of q_l mod q_i.
        let l = 4;
        for i in 0..l {
            let m = &c.moduli_q()[i];
            let q_l = m.reduce_u64(c.moduli_q()[l].value());
            let inv = c.rescale_scalar(l, i).mul(q_l, m);
            assert_eq!(inv, 1);
        }
        // P scalars.
        for i in 0..=c.max_level() {
            let m = &c.moduli_q()[i];
            assert_eq!(c.p_inv_mod_q(i).mul(c.p_mod_q(i), m), 1);
        }
    }

    #[test]
    fn standard_scale_ladder() {
        let c = ctx();
        let top = c.standard_scale(c.max_level());
        assert_eq!(top, 2f64.powi(40));
        for l in 0..c.max_level() {
            let s = c.standard_scale(l);
            assert!((s / top - 1.0).abs() < 0.01, "σ_{l} = {s} drifted from Δ");
        }
    }

    #[test]
    fn batch_ranges_cover_and_respect_batch() {
        let c = ctx(); // limb_batch = 2
        let ranges = c.batch_ranges(5);
        assert_eq!(ranges, vec![0..2, 2..4, 4..5]);
        assert_eq!(c.batch_ranges(0).len(), 0);
    }

    #[test]
    fn scheduled_region_fuses_elementwise_chains() {
        use crate::poly::RNSPoly;
        use fides_client::Domain;
        let c = ctx(); // limb_batch 2, fusion on, graph exec on
        let gpu = Arc::clone(c.gpu());
        let mut a = RNSPoly::zero(&c, 4, false, Domain::Eval); // 5 limbs → 3 batches
        let b = RNSPoly::zero(&c, 4, false, Domain::Eval);
        gpu.reset_stats();
        c.reset_sched_stats();
        // Two chained adds per batch stream: eager dispatch would launch 6
        // elementwise kernels. Stage-1 fusion collapses each stream's
        // pair, and — the kernels being far below the host submission
        // interval at toy scale — scheduler v2 packs the three
        // independent chains onto one stream and merges them too (their
        // slice traffic is alias-light), so the whole region is a single
        // launch.
        c.scheduled(|| {
            a.add_assign_poly(&b);
            a.add_assign_poly(&b);
        });
        let sched = c.sched_stats();
        assert_eq!(sched.graphs, 1);
        assert_eq!(sched.recorded_kernels, 6);
        assert_eq!(sched.fused_kernels, 5);
        assert_eq!(gpu.stats().kernel_launches, 1, "region fuses to one launch");
    }

    #[test]
    fn scheduled_region_is_reentrant() {
        use crate::poly::RNSPoly;
        use fides_client::Domain;
        let c = ctx();
        let mut a = RNSPoly::zero(&c, 2, false, Domain::Eval);
        let b = RNSPoly::zero(&c, 2, false, Domain::Eval);
        c.reset_sched_stats();
        c.scheduled(|| {
            c.scheduled(|| a.add_assign_poly(&b));
            c.scheduled(|| a.add_assign_poly(&b));
        });
        // One graph owned by the outermost region; inner regions contribute.
        assert_eq!(c.sched_stats().graphs, 1);
    }

    #[test]
    fn graph_exec_off_dispatches_eagerly() {
        let params = CkksParameters::toy().with_graph_exec(false);
        let c = CkksContext::new(
            params,
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional),
        );
        use crate::poly::RNSPoly;
        use fides_client::Domain;
        let mut a = RNSPoly::zero(&c, 4, false, Domain::Eval);
        let b = RNSPoly::zero(&c, 4, false, Domain::Eval);
        c.gpu().reset_stats();
        c.scheduled(|| {
            a.add_assign_poly(&b);
            a.add_assign_poly(&b);
        });
        assert_eq!(c.sched_stats().graphs, 0, "no planning pass");
        assert_eq!(
            c.gpu().stats().kernel_launches,
            6,
            "eager per-batch launches"
        );
    }

    #[test]
    fn panicking_scheduled_region_is_closed_not_leaked() {
        use crate::poly::RNSPoly;
        use fides_client::Domain;
        let c = ctx();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.scheduled(|| panic!("op failed midway"));
        }));
        assert!(result.is_err());
        assert!(
            !c.gpu().is_capturing(),
            "unwind must close the capture region"
        );
        // Subsequent ops schedule normally.
        let mut a = RNSPoly::zero(&c, 2, false, Domain::Eval);
        let b = RNSPoly::zero(&c, 2, false, Domain::Eval);
        c.reset_sched_stats();
        c.scheduled(|| a.add_assign_poly(&b));
        assert_eq!(c.sched_stats().graphs, 1, "engine usable after panic");
    }

    #[test]
    fn stream_count_is_configurable() {
        let params = CkksParameters::toy().with_num_streams(2);
        let c = CkksContext::new(
            params,
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly),
        );
        assert_eq!(c.stream_for_batch(0), 0);
        assert_eq!(c.stream_for_batch(1), 1);
        assert_eq!(c.stream_for_batch(2), 0, "wraps at the configured count");
    }

    #[test]
    fn eval_perm_cached() {
        let c = ctx();
        let p1 = c.eval_perm(5);
        let p2 = c.eval_perm(5);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(p1.host.len(), c.n());
    }

    #[test]
    fn mod_up_tables_shapes() {
        let c = ctx();
        // Level 4, digit 0: src = q0..q1 (alpha... digit size ceil(5/2)=3 → digit0 = 0..3).
        let t = c.mod_up_tables(4, 0);
        assert_eq!(t.conv.src().len(), 3);
        assert_eq!(t.dst_q_indices, vec![3, 4]);
        assert_eq!(t.conv.dst().len(), 2 + 3); // 2 q + 3 p
                                               // Level 1: only digit 0 active with 2 primes.
        let t = c.mod_up_tables(1, 0);
        assert_eq!(t.conv.src().len(), 2);
        assert!(t.dst_q_indices.is_empty());
    }

    #[test]
    fn monomial_is_imaginary_unit_squared_minus_one() {
        // NTT(X^{N/2}) ⊙ NTT(X^{N/2}) = NTT(X^N) = NTT(-1).
        let c = ctx();
        let m = &c.moduli_q()[0];
        let mono = c.monomial_half(0);
        let sq0 = m.mul_mod(mono[0], mono[0]);
        assert_eq!(
            sq0,
            m.value() - 1,
            "X^{{N/2}} squared must be -1 in eval domain"
        );
    }
}
