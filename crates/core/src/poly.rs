//! Device-resident RNS polynomials: the `RNSPoly → LimbPartition → Limb →
//! VectorGPU` composition of the paper's Fig. 2.
//!
//! Every method that touches limb data is expressed as simulated kernel
//! launches: limbs are grouped into batches (§III-F.1), each batch becomes
//! one kernel on a stream chosen round-robin, and NTTs are charged as the two
//! hierarchical passes of Fig. 3. Cross-limb operations (base conversion,
//! rescale) fence the batch streams first.
//!
//! Inside a scheduled region ([`CkksContext::scheduled`]) these launches are
//! *recorded* as kernel nodes of the lazy [`ExecGraph`](crate::sched) —
//! with the limb batch, stream and fence structure intact — instead of timed
//! eagerly; the planning pass then fuses elementwise chains and replays the
//! plan. Functional results are identical either way (the kernels are
//! data-oblivious); only the timing model sees the difference.

use std::sync::Arc;

use fides_client::Domain;
use fides_gpu_sim::{KernelDesc, KernelKind, VectorGpu};
use fides_math::{automorphism_eval, Modulus, PolyOps};

use crate::context::{ChainIdx, CkksContext};
use crate::kernels;

/// One RNS limb: a polynomial under a single prime, resident on the device.
#[derive(Debug)]
pub struct Limb {
    /// The device buffer (one contiguous array per limb — the
    /// stack-of-arrays layout of §III-D).
    pub(crate) data: VectorGpu<u64>,
    /// Which prime this limb reduces modulo.
    pub(crate) chain: ChainIdx,
}

impl Limb {
    /// The prime index of this limb.
    pub fn chain(&self) -> ChainIdx {
        self.chain
    }
}

/// The portion of a polynomial resident on one device. The current FIDESlib
/// release is single-GPU, so every [`RNSPoly`] holds exactly one partition
/// (multi-GPU support would shard limbs across partitions).
#[derive(Debug)]
pub struct LimbPartition {
    pub(crate) limbs: Vec<Limb>,
}

/// A device-resident RNS polynomial of degree `N` over the active chain
/// `q_0..q_level` plus (during key switching) the extension base `P`.
#[derive(Debug)]
pub struct RNSPoly {
    pub(crate) ctx: Arc<CkksContext>,
    pub(crate) part: LimbPartition,
    pub(crate) num_q: usize,
    pub(crate) num_p: usize,
    pub(crate) format: Domain,
}

impl RNSPoly {
    /// Allocates an all-zero polynomial with `level + 1` q-limbs and,
    /// optionally, the `α` extension limbs.
    pub fn zero(ctx: &Arc<CkksContext>, level: usize, with_p: bool, format: Domain) -> Self {
        let n = ctx.n();
        let mut limbs = Vec::with_capacity(level + 1 + ctx.alpha());
        for i in 0..=level {
            limbs.push(Limb {
                data: VectorGpu::new(ctx.gpu(), n),
                chain: ChainIdx::Q(i),
            });
        }
        let num_p = if with_p { ctx.alpha() } else { 0 };
        for k in 0..num_p {
            limbs.push(Limb {
                data: VectorGpu::new(ctx.gpu(), n),
                chain: ChainIdx::P(k),
            });
        }
        Self {
            ctx: Arc::clone(ctx),
            part: LimbPartition { limbs },
            num_q: level + 1,
            num_p,
            format,
        }
    }

    /// Builds a polynomial from host limb data ordered `q_0..q_level` (an
    /// adapter-layer upload; the PCIe transfer is charged separately).
    pub fn from_host_q_limbs(ctx: &Arc<CkksContext>, limbs: Vec<Vec<u64>>, format: Domain) -> Self {
        let num_q = limbs.len();
        let device_limbs: Vec<Limb> = limbs
            .into_iter()
            .enumerate()
            .map(|(i, host)| Limb {
                data: VectorGpu::from_vec(ctx.gpu(), host),
                chain: ChainIdx::Q(i),
            })
            .collect();
        Self {
            ctx: Arc::clone(ctx),
            part: LimbPartition {
                limbs: device_limbs,
            },
            num_q,
            num_p: 0,
            format,
        }
    }

    /// Level of the polynomial (`num_q − 1`).
    pub fn level(&self) -> usize {
        self.num_q - 1
    }

    /// Number of q-limbs.
    pub fn num_q(&self) -> usize {
        self.num_q
    }

    /// Number of extension limbs.
    pub fn num_p(&self) -> usize {
        self.num_p
    }

    /// Representation domain.
    pub fn format(&self) -> Domain {
        self.format
    }

    /// Total limbs (q + p).
    pub fn num_limbs(&self) -> usize {
        self.part.limbs.len()
    }

    /// The owning context.
    pub fn context(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    /// Copies limb data back to the host (`q` limbs only).
    pub fn to_host_q_limbs(&self) -> Vec<Vec<u64>> {
        self.part.limbs[..self.num_q]
            .iter()
            .map(|l| l.data.to_vec())
            .collect()
    }

    pub(crate) fn limb(&self, i: usize) -> &Limb {
        &self.part.limbs[i]
    }

    fn n(&self) -> usize {
        self.ctx.n()
    }

    fn modulus_of(&self, i: usize) -> Modulus {
        *self.ctx.modulus(self.part.limbs[i].chain)
    }

    /// Deep copy through simulated device-to-device copy kernels.
    pub fn duplicate(&self) -> Self {
        let ctx = Arc::clone(&self.ctx);
        let gpu = Arc::clone(ctx.gpu());
        let lb = kernels::limb_bytes(self.n());
        let mut limbs = Vec::with_capacity(self.part.limbs.len());
        for (k, range) in ctx
            .batch_ranges(self.part.limbs.len())
            .into_iter()
            .enumerate()
        {
            let stream = ctx.stream_for_batch(k);
            let mut desc = KernelDesc::new(KernelKind::Fill);
            let mut fresh: Vec<Limb> = Vec::with_capacity(range.len());
            for i in range.clone() {
                let src = &self.part.limbs[i];
                let dst = VectorGpu::new(ctx.gpu(), self.n());
                desc = desc.read(src.data.buffer(), lb).write(dst.buffer(), lb);
                fresh.push(Limb {
                    data: dst,
                    chain: src.chain,
                });
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    fresh[off]
                        .data
                        .copy_from_slice(self.part.limbs[i].data.as_slice());
                }
            });
            limbs.extend(fresh);
        }
        Self {
            ctx,
            part: LimbPartition { limbs },
            num_q: self.num_q,
            num_p: self.num_p,
            format: self.format,
        }
    }

    /// Generic batched elementwise kernel over `self` (in place), reading
    /// zero or more other polynomials at the same limb positions.
    pub(crate) fn zip_kernel(
        &mut self,
        others: &[&RNSPoly],
        ops_per_limb: u64,
        f: impl Fn(&Modulus, &mut [u64], &[&[u64]]),
    ) {
        for o in others {
            assert_eq!(
                o.part.limbs.len(),
                self.part.limbs.len(),
                "limb count mismatch"
            );
            assert_eq!(o.format, self.format, "format mismatch");
        }
        let ctx = Arc::clone(&self.ctx);
        let gpu = Arc::clone(ctx.gpu());
        let lb = kernels::limb_bytes(self.n());
        for (k, range) in ctx
            .batch_ranges(self.part.limbs.len())
            .into_iter()
            .enumerate()
        {
            let stream = ctx.stream_for_batch(k);
            let mut desc =
                KernelDesc::new(KernelKind::Elementwise).ops(ops_per_limb * range.len() as u64);
            for i in range.clone() {
                desc = desc
                    .read(self.part.limbs[i].data.buffer(), lb)
                    .write(self.part.limbs[i].data.buffer(), lb);
                for o in others {
                    desc = desc.read(o.part.limbs[i].data.buffer(), lb);
                }
            }
            let moduli: Vec<Modulus> = range.clone().map(|i| self.modulus_of(i)).collect();
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    let srcs: Vec<&[u64]> = others
                        .iter()
                        .map(|o| o.part.limbs[i].data.as_slice())
                        .collect();
                    // Split borrow: limbs are disjoint, take raw slice.
                    let dst = self.part.limbs[i].data.as_mut_slice();
                    f(&moduli[off], dst, &srcs);
                }
            });
        }
    }

    /// `self += other`.
    pub fn add_assign_poly(&mut self, other: &RNSPoly) {
        let ops = kernels::add_ops(self.n());
        self.zip_kernel(&[other], ops, |m, dst, srcs| {
            m.add_assign_slices(dst, srcs[0])
        });
    }

    /// `self -= other`.
    pub fn sub_assign_poly(&mut self, other: &RNSPoly) {
        let ops = kernels::add_ops(self.n());
        self.zip_kernel(&[other], ops, |m, dst, srcs| {
            m.sub_assign_slices(dst, srcs[0])
        });
    }

    /// `self = -self`.
    pub fn neg_assign(&mut self) {
        let ops = kernels::add_ops(self.n());
        self.zip_kernel(&[], ops, |m, dst, _| m.neg_assign(dst));
    }

    /// `self ⊙= other` (pointwise modular multiplication; both eval domain).
    pub fn mul_assign_poly(&mut self, other: &RNSPoly) {
        assert_eq!(
            self.format,
            Domain::Eval,
            "dyadic product needs evaluation domain"
        );
        let ops = kernels::mul_ops(self.n());
        self.zip_kernel(&[other], ops, |m, dst, srcs| {
            m.mul_assign_slices(dst, srcs[0])
        });
    }

    /// `self += a ⊙ b` (fused multiply-accumulate, the dot-product fusion of
    /// §III-F.5).
    pub fn mul_add_assign_poly(&mut self, a: &RNSPoly, b: &RNSPoly) {
        assert_eq!(self.format, Domain::Eval);
        let ops = kernels::mul_add_ops(self.n());
        self.zip_kernel(&[a, b], ops, |m, dst, srcs| {
            m.mul_add_assign_slices(dst, srcs[0], srcs[1])
        });
    }

    /// `out = a ⊙ b` into a fresh polynomial.
    pub fn mul_poly(a: &RNSPoly, b: &RNSPoly) -> RNSPoly {
        let mut out = a.duplicate();
        out.mul_assign_poly(b);
        out
    }

    /// Per-limb scalar multiply: `self[i] ⊙= scalars[i]` (limb order).
    pub fn scalar_mul_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.part.limbs.len());
        let ops = kernels::mul_ops(self.n());
        let scalars = scalars.to_vec();
        self.indexed_kernel(ops, move |idx, m, dst| {
            m.scalar_mul_assign(dst, scalars[idx])
        });
    }

    /// Per-limb scalar add: `self[i] += scalars[i]` (limb order). In
    /// evaluation domain this adds a constant to every slot (ScalarAdd).
    pub fn scalar_add_assign(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.part.limbs.len());
        let ops = kernels::add_ops(self.n());
        let scalars = scalars.to_vec();
        self.indexed_kernel(ops, move |idx, m, dst| {
            m.scalar_add_assign(dst, scalars[idx])
        });
    }

    /// Elementwise kernel that knows the limb position (for per-limb
    /// constants).
    pub(crate) fn indexed_kernel(
        &mut self,
        ops_per_limb: u64,
        f: impl Fn(usize, &Modulus, &mut [u64]),
    ) {
        let ctx = Arc::clone(&self.ctx);
        let gpu = Arc::clone(ctx.gpu());
        let lb = kernels::limb_bytes(self.n());
        for (k, range) in ctx
            .batch_ranges(self.part.limbs.len())
            .into_iter()
            .enumerate()
        {
            let stream = ctx.stream_for_batch(k);
            let mut desc =
                KernelDesc::new(KernelKind::Elementwise).ops(ops_per_limb * range.len() as u64);
            for i in range.clone() {
                desc = desc
                    .read(self.part.limbs[i].data.buffer(), lb)
                    .write(self.part.limbs[i].data.buffer(), lb);
            }
            let moduli: Vec<Modulus> = range.clone().map(|i| self.modulus_of(i)).collect();
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    f(i, &moduli[off], self.part.limbs[i].data.as_mut_slice());
                }
            });
        }
    }

    /// Forward NTT over all limbs: two hierarchical passes per limb batch.
    pub fn ntt_inplace(&mut self) {
        assert_eq!(
            self.format,
            Domain::Coeff,
            "forward NTT expects coefficient domain"
        );
        self.ntt_passes(true);
        self.format = Domain::Eval;
    }

    /// Inverse NTT over all limbs.
    pub fn intt_inplace(&mut self) {
        assert_eq!(
            self.format,
            Domain::Eval,
            "inverse NTT expects evaluation domain"
        );
        self.ntt_passes(false);
        self.format = Domain::Coeff;
    }

    fn ntt_passes(&mut self, forward: bool) {
        let ctx = Arc::clone(&self.ctx);
        let gpu = Arc::clone(ctx.gpu());
        let n = self.n();
        let lb = kernels::limb_bytes(n);
        let phase_ops = ctx.ntt_phase_ops_scaled();
        for (k, range) in ctx
            .batch_ranges(self.part.limbs.len())
            .into_iter()
            .enumerate()
        {
            let stream = ctx.stream_for_batch(k);
            for pass in 0..2u8 {
                let kind = match (forward, pass) {
                    (true, 0) => KernelKind::NttPhase1,
                    (true, _) => KernelKind::NttPhase2,
                    (false, 0) => KernelKind::InttPhase1,
                    (false, _) => KernelKind::InttPhase2,
                };
                let mut desc = KernelDesc::new(kind)
                    .ops(phase_ops * range.len() as u64)
                    .access_efficiency(ctx.params().access_efficiency);
                for i in range.clone() {
                    desc = desc
                        .read(self.part.limbs[i].data.buffer(), lb)
                        .write(self.part.limbs[i].data.buffer(), lb);
                }
                let chains: Vec<ChainIdx> =
                    range.clone().map(|i| self.part.limbs[i].chain).collect();
                gpu.launch(stream, desc, || {
                    for (off, i) in range.clone().enumerate() {
                        let t = ctx.ntt(chains[off]);
                        let data = self.part.limbs[i].data.as_mut_slice();
                        match (forward, pass) {
                            (true, 0) => t.forward_pass1(data),
                            (true, _) => t.forward_pass2(data),
                            (false, 0) => t.inverse_pass1(data),
                            (false, _) => t.inverse_pass2(data),
                        }
                    }
                });
            }
        }
    }

    /// Applies the Galois automorphism `X → X^g` in evaluation domain
    /// (a pure index permutation), returning a fresh polynomial.
    pub fn automorph_eval(&self, g: usize) -> RNSPoly {
        assert_eq!(self.format, Domain::Eval, "eval-domain automorphism");
        let ctx = Arc::clone(&self.ctx);
        let gpu = Arc::clone(ctx.gpu());
        let perm = ctx.eval_perm(g);
        let n = self.n();
        let lb = kernels::limb_bytes(n);
        let mut limbs = Vec::with_capacity(self.part.limbs.len());
        for (k, range) in ctx
            .batch_ranges(self.part.limbs.len())
            .into_iter()
            .enumerate()
        {
            let stream = ctx.stream_for_batch(k);
            let mut desc = KernelDesc::new(KernelKind::Automorphism)
                .ops(kernels::add_ops(n) * range.len() as u64);
            desc = desc.read(perm.dev.buffer(), (n * 4) as u64);
            let mut fresh: Vec<Limb> = Vec::with_capacity(range.len());
            for i in range.clone() {
                let dst = VectorGpu::new(ctx.gpu(), n);
                desc = desc
                    .read(self.part.limbs[i].data.buffer(), lb)
                    .write(dst.buffer(), lb);
                fresh.push(Limb {
                    data: dst,
                    chain: self.part.limbs[i].chain,
                });
            }
            gpu.launch(stream, desc, || {
                for (off, i) in range.clone().enumerate() {
                    automorphism_eval(
                        self.part.limbs[i].data.as_slice(),
                        &perm.host,
                        fresh[off].data.as_mut_slice(),
                    );
                }
            });
            limbs.extend(fresh);
        }
        RNSPoly {
            ctx,
            part: LimbPartition { limbs },
            num_q: self.num_q,
            num_p: self.num_p,
            format: self.format,
        }
    }

    /// Drops limbs above `level` (OpenFHE's LevelReduce — no rescaling).
    pub fn drop_to_level(&mut self, level: usize) {
        assert!(
            self.num_p == 0,
            "cannot drop levels on an extended polynomial"
        );
        assert!(level < self.num_q, "target level must be below current");
        self.part.limbs.truncate(level + 1);
        self.num_q = level + 1;
    }

    /// Removes the extension limbs (after ModDown).
    pub(crate) fn truncate_p(&mut self) {
        self.part.limbs.truncate(self.num_q);
        self.num_p = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;
    use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
    use fides_math::sample_uniform_poly;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<CkksContext> {
        CkksContext::new(
            CkksParameters::toy(),
            GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional),
        )
    }

    fn random_poly(c: &Arc<CkksContext>, level: usize, fmt: Domain, seed: u64) -> RNSPoly {
        let mut rng = StdRng::seed_from_u64(seed);
        let limbs: Vec<Vec<u64>> = (0..=level)
            .map(|i| sample_uniform_poly(&mut rng, c.n(), &c.moduli_q()[i]))
            .collect();
        RNSPoly::from_host_q_limbs(c, limbs, fmt)
    }

    #[test]
    fn zero_poly_shape() {
        let c = ctx();
        let p = RNSPoly::zero(&c, 2, true, Domain::Eval);
        assert_eq!(p.level(), 2);
        assert_eq!(p.num_q(), 3);
        assert_eq!(p.num_p(), c.alpha());
        assert_eq!(p.num_limbs(), 3 + c.alpha());
    }

    #[test]
    fn add_sub_roundtrip() {
        let c = ctx();
        let a = random_poly(&c, 3, Domain::Eval, 1);
        let b = random_poly(&c, 3, Domain::Eval, 2);
        let mut s = a.duplicate();
        s.add_assign_poly(&b);
        s.sub_assign_poly(&b);
        assert_eq!(s.to_host_q_limbs(), a.to_host_q_limbs());
    }

    #[test]
    fn ntt_roundtrip_all_limbs() {
        let c = ctx();
        let a = random_poly(&c, 4, Domain::Coeff, 3);
        let mut x = a.duplicate();
        x.ntt_inplace();
        assert_eq!(x.format(), Domain::Eval);
        x.intt_inplace();
        assert_eq!(x.to_host_q_limbs(), a.to_host_q_limbs());
    }

    #[test]
    fn eval_product_is_ring_product() {
        let c = ctx();
        let a = random_poly(&c, 1, Domain::Coeff, 4);
        let b = random_poly(&c, 1, Domain::Coeff, 5);
        // Reference via schoolbook on limb 0.
        let m = c.moduli_q()[0];
        let expect = fides_math::negacyclic_schoolbook_mul(
            &a.to_host_q_limbs()[0],
            &b.to_host_q_limbs()[0],
            &m,
        );
        let mut ea = a.duplicate();
        let mut eb = b.duplicate();
        ea.ntt_inplace();
        eb.ntt_inplace();
        ea.mul_assign_poly(&eb);
        ea.intt_inplace();
        assert_eq!(ea.to_host_q_limbs()[0], expect);
    }

    #[test]
    fn mul_add_fusion_matches_separate_ops() {
        let c = ctx();
        let a = random_poly(&c, 2, Domain::Eval, 6);
        let b = random_poly(&c, 2, Domain::Eval, 7);
        let acc0 = random_poly(&c, 2, Domain::Eval, 8);
        let mut fused = acc0.duplicate();
        fused.mul_add_assign_poly(&a, &b);
        let mut manual = acc0.duplicate();
        let prod = RNSPoly::mul_poly(&a, &b);
        manual.add_assign_poly(&prod);
        assert_eq!(fused.to_host_q_limbs(), manual.to_host_q_limbs());
    }

    #[test]
    fn automorph_eval_matches_coeff_path() {
        let c = ctx();
        let a = random_poly(&c, 1, Domain::Coeff, 9);
        let g = 5usize;
        // Reference: coeff automorph then NTT.
        let mut expect_limbs = Vec::new();
        for (i, limb) in a.to_host_q_limbs().iter().enumerate() {
            let m = c.moduli_q()[i];
            let mut out = vec![0u64; c.n()];
            fides_math::automorphism_coeff(limb, g, &m, &mut out);
            c.ntt(ChainIdx::Q(i)).table().forward_inplace(&mut out);
            expect_limbs.push(out);
        }
        let mut ea = a.duplicate();
        ea.ntt_inplace();
        let rotated = ea.automorph_eval(g);
        assert_eq!(rotated.to_host_q_limbs(), expect_limbs);
    }

    #[test]
    fn scalar_ops() {
        let c = ctx();
        let mut a = random_poly(&c, 1, Domain::Eval, 10);
        let orig = a.to_host_q_limbs();
        let scalars: Vec<u64> = vec![3, 7];
        a.scalar_mul_assign(&scalars);
        let now = a.to_host_q_limbs();
        for i in 0..2 {
            let m = c.moduli_q()[i];
            for (x, y) in orig[i].iter().zip(&now[i]) {
                assert_eq!(m.mul_mod(*x, scalars[i]), *y);
            }
        }
        a.neg_assign();
        a.scalar_add_assign(&[1, 1]);
        let neg = a.to_host_q_limbs();
        for i in 0..2 {
            let m = c.moduli_q()[i];
            assert_eq!(neg[i][0], m.add_mod(m.neg_mod(now[i][0]), 1));
        }
    }

    #[test]
    fn kernel_ledger_reflects_batching() {
        let c = ctx(); // limb_batch = 2
        let gpu = Arc::clone(c.gpu());
        gpu.reset_stats();
        let mut a = random_poly(&c, 4, Domain::Eval, 11); // 5 limbs → 3 batches
        let b = random_poly(&c, 4, Domain::Eval, 12);
        let before = gpu.stats().kernel_launches;
        a.add_assign_poly(&b);
        let after = gpu.stats().kernel_launches;
        assert_eq!(
            after - before,
            3,
            "5 limbs at batch 2 → 3 elementwise kernels"
        );
    }

    #[test]
    fn drop_to_level_truncates() {
        let c = ctx();
        let mut a = random_poly(&c, 4, Domain::Eval, 13);
        a.drop_to_level(1);
        assert_eq!(a.num_q(), 2);
        assert_eq!(a.num_limbs(), 2);
    }

    #[test]
    fn cost_only_mode_runs_full_kernel_schedule() {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let c = CkksContext::new(CkksParameters::toy(), Arc::clone(&gpu));
        let mut a = RNSPoly::zero(&c, 4, false, Domain::Coeff);
        a.ntt_inplace();
        let b = a.duplicate();
        a.mul_assign_poly(&b);
        let stats = gpu.stats();
        // 5 limbs / batch 2 = 3 batches; NTT = 2 kernels per batch.
        assert_eq!(stats.per_kind["ntt_phase1"].count, 3);
        assert_eq!(stats.per_kind["ntt_phase2"].count, 3);
        assert!(stats.per_kind["elementwise"].count >= 3);
        assert!(gpu.sync() > 0.0);
    }
}
