//! Integration tests: every server-side operation validated against the
//! client's plaintext arithmetic — the FIDESlib integration-test methodology
//! (client encrypts, simulated-GPU server computes, client decrypts and the
//! result is compared with the expected plaintext computation).

use std::sync::Arc;

use fides_client::{ClientContext, KeyGenerator, RawSwitchingKey, SecretKey};
use fides_core::{adapter, Ciphertext, CkksContext, CkksParameters, EvalKeySet, FidesError};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_math::Complex64;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Harness {
    ctx: Arc<CkksContext>,
    client: ClientContext,
    sk: SecretKey,
    pk: fides_client::RawPublicKey,
    keys: EvalKeySet,
    rng: StdRng,
}

impl Harness {
    fn new(rotations: &[i32]) -> Self {
        Self::with_params(CkksParameters::toy(), rotations)
    }

    fn with_params(params: CkksParameters, rotations: &[i32]) -> Self {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let ctx = CkksContext::new(params, gpu);
        let client = ClientContext::new(ctx.raw_params().clone());
        let mut kg = KeyGenerator::new(&client, 0xf1de5);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let relin = kg.relinearization_key(&sk);
        let rot_keys: Vec<(i32, RawSwitchingKey)> = rotations
            .iter()
            .map(|&k| (k, kg.rotation_key(&sk, k)))
            .collect();
        let conj = kg.conjugation_key(&sk);
        let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rot_keys, Some(&conj)).unwrap();
        Self {
            ctx,
            client,
            sk,
            pk,
            keys,
            rng: StdRng::seed_from_u64(0xcafe),
        }
    }

    fn encrypt(&mut self, values: &[f64]) -> Ciphertext {
        let pt = self
            .client
            .encode_real(values, self.ctx.fresh_scale(), self.ctx.max_level())
            .unwrap();
        let raw = self.client.encrypt(&pt, &self.pk, &mut self.rng).unwrap();
        adapter::load_ciphertext(&self.ctx, &raw).unwrap()
    }

    fn encrypt_complex(&mut self, values: &[Complex64]) -> Ciphertext {
        let pt = self
            .client
            .encode(values, self.ctx.fresh_scale(), self.ctx.max_level())
            .unwrap();
        let raw = self.client.encrypt(&pt, &self.pk, &mut self.rng).unwrap();
        adapter::load_ciphertext(&self.ctx, &raw).unwrap()
    }

    fn decrypt(&self, ct: &Ciphertext) -> Vec<f64> {
        let raw = adapter::store_ciphertext(ct);
        self.client
            .decode_real(&self.client.decrypt(&raw, &self.sk).unwrap())
            .unwrap()
    }

    fn decrypt_complex(&self, ct: &Ciphertext) -> Vec<Complex64> {
        let raw = adapter::store_ciphertext(ct);
        self.client
            .decode(&self.client.decrypt(&raw, &self.sk).unwrap())
            .unwrap()
    }
}

fn ramp(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.173).sin() * 0.9).collect()
}

fn assert_close(got: &[f64], expect: &[f64], tol: f64, what: &str) {
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            (g - e).abs() < tol,
            "{what}: slot {i}: got {g}, expected {e}"
        );
    }
}

#[test]
fn hadd_hsub_roundtrip() {
    let mut h = Harness::new(&[]);
    let a = ramp(64);
    let b: Vec<f64> = a.iter().map(|x| 1.0 - x).collect();
    let ca = h.encrypt(&a);
    let cb = h.encrypt(&b);
    let sum = ca.add(&cb).unwrap();
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    assert_close(&h.decrypt(&sum), &expect, 1e-6, "HAdd");
    let diff = ca.sub(&cb).unwrap();
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
    assert_close(&h.decrypt(&diff), &expect, 1e-6, "HSub");
    let mut neg = ca.duplicate();
    neg.negate_assign();
    let expect: Vec<f64> = a.iter().map(|x| -x).collect();
    assert_close(&h.decrypt(&neg), &expect, 1e-6, "negate");
}

#[test]
fn scalar_add_and_mult() {
    let mut h = Harness::new(&[]);
    let a = ramp(32);
    let ca = h.encrypt(&a);
    let shifted = ca.add_scalar(0.75);
    let expect: Vec<f64> = a.iter().map(|x| x + 0.75).collect();
    assert_close(&h.decrypt(&shifted), &expect, 1e-6, "ScalarAdd");

    let mut scaled = ca.mul_scalar(-1.5);
    scaled.rescale_in_place().unwrap();
    let expect: Vec<f64> = a.iter().map(|x| x * -1.5).collect();
    assert_close(&h.decrypt(&scaled), &expect, 1e-6, "ScalarMult");

    let doubled = ca.mul_int(3);
    let expect: Vec<f64> = a.iter().map(|x| x * 3.0).collect();
    assert_close(&h.decrypt(&doubled), &expect, 1e-6, "mul_int");
}

#[test]
fn ptadd_ptmult() {
    let mut h = Harness::new(&[]);
    let a = ramp(64);
    let b: Vec<f64> = (0..64).map(|i| 0.3 + 0.01 * i as f64).collect();
    let ca = h.encrypt(&a);
    let raw_pt = h.client.encode_real(&b, ca.scale(), ca.level()).unwrap();
    let pt = adapter::load_plaintext(&h.ctx, &raw_pt).unwrap();

    let sum = ca.add_plain(&pt).unwrap();
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
    assert_close(&h.decrypt(&sum), &expect, 1e-6, "PtAdd");

    let mut prod = ca.mul_plain(&pt).unwrap();
    prod.rescale_in_place().unwrap();
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
    assert_close(&h.decrypt(&prod), &expect, 1e-5, "PtMult+Rescale");
}

#[test]
fn hmult_and_rescale() {
    let mut h = Harness::new(&[]);
    let a = ramp(128);
    let b: Vec<f64> = a.iter().map(|x| 0.8 - x * 0.5).collect();
    let ca = h.encrypt(&a);
    let cb = h.encrypt(&b);
    let mut prod = ca.mul(&cb, &h.keys).unwrap();
    prod.rescale_in_place().unwrap();
    assert_eq!(prod.level(), ca.level() - 1);
    let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
    assert_close(&h.decrypt(&prod), &expect, 1e-4, "HMult+Rescale");
}

#[test]
fn hsquare_matches_hmult() {
    let mut h = Harness::new(&[]);
    let a = ramp(64);
    let ca = h.encrypt(&a);
    let mut sq = ca.square(&h.keys).unwrap();
    sq.rescale_in_place().unwrap();
    let expect: Vec<f64> = a.iter().map(|x| x * x).collect();
    assert_close(&h.decrypt(&sq), &expect, 1e-4, "HSquare");
}

#[test]
fn multiplication_chain_to_depth() {
    let mut h = Harness::new(&[]);
    let a: Vec<f64> = (0..32).map(|i| 0.9 - 0.001 * i as f64).collect();
    let ca = h.encrypt(&a);
    // Square down the whole depth: x^(2^depth).
    let mut acc = ca;
    let mut expect = a.clone();
    for _ in 0..h.ctx.max_level().min(3) {
        acc = acc.square(&h.keys).unwrap();
        acc.rescale_in_place().unwrap();
        expect = expect.iter().map(|x| x * x).collect();
    }
    assert_close(&h.decrypt(&acc), &expect, 1e-3, "squaring chain");
}

#[test]
fn rotations_and_conjugation() {
    let mut h = Harness::new(&[1, 2, 5, -1]);
    let slots = 16usize;
    let a: Vec<f64> = (0..slots).map(|i| i as f64 + 1.0).collect();
    let ca = h.encrypt(&a);
    for k in [1i32, 2, 5, -1] {
        let rotated = ca.rotate(k, &h.keys).unwrap();
        let expect: Vec<f64> = (0..slots)
            .map(|i| a[((i as i64 + k as i64).rem_euclid(slots as i64)) as usize])
            .collect();
        assert_close(
            &h.decrypt(&rotated),
            &expect,
            1e-4,
            &format!("HRotate({k})"),
        );
    }
    // Conjugation on complex data.
    let vals: Vec<Complex64> = (0..slots)
        .map(|i| Complex64::new(i as f64 * 0.1, 0.5 - i as f64 * 0.05))
        .collect();
    let cc = h.encrypt_complex(&vals);
    let conj = cc.conjugate(&h.keys).unwrap();
    let got = h.decrypt_complex(&conj);
    for (g, v) in got.iter().zip(&vals) {
        assert!(
            (*g - v.conj()).abs() < 1e-4,
            "HConjugate: {g:?} vs {:?}",
            v.conj()
        );
    }
}

#[test]
fn missing_rotation_key_is_reported() {
    let mut h = Harness::new(&[1]);
    let ca = h.encrypt(&ramp(8));
    match ca.rotate(3, &h.keys) {
        Err(FidesError::MissingKey(k)) => assert!(k.contains("rotation")),
        other => panic!("expected MissingKey, got {other:?}"),
    }
}

#[test]
fn hoisted_rotations_match_individual() {
    let mut h = Harness::new(&[1, 2, 3]);
    let a = ramp(32);
    let ca = h.encrypt(&a);
    let hoisted = ca.hoisted_rotations(&[0, 1, 2, 3], &h.keys).unwrap();
    for (idx, k) in [0i32, 1, 2, 3].iter().enumerate() {
        let direct = ca.rotate(*k, &h.keys).unwrap();
        let hv = h.decrypt(&hoisted[idx]);
        let dv = h.decrypt(&direct);
        assert_close(&hv, &dv, 1e-5, &format!("hoisted vs direct ({k})"));
    }
}

#[test]
fn mul_by_i_multiplies_slots_by_imaginary_unit() {
    let mut h = Harness::new(&[]);
    let vals: Vec<Complex64> = (0..16)
        .map(|i| Complex64::new(0.2 * i as f64, -0.1 * i as f64))
        .collect();
    let cc = h.encrypt_complex(&vals);
    let rotated = cc.mul_by_i();
    let got = h.decrypt_complex(&rotated);
    for (g, v) in got.iter().zip(&vals) {
        let expect = *v * Complex64::I;
        assert!((*g - expect).abs() < 1e-5, "mul_by_i: {g:?} vs {expect:?}");
    }
    assert_eq!(rotated.level(), cc.level(), "exact op consumes no level");
    assert_eq!(rotated.scale(), cc.scale());
}

#[test]
fn level_mismatch_rejected() {
    let mut h = Harness::new(&[]);
    let ca = h.encrypt(&ramp(8));
    let mut cb = h.encrypt(&ramp(8));
    cb.drop_to_level(ca.level() - 1).unwrap();
    assert!(matches!(ca.add(&cb), Err(FidesError::LevelMismatch { .. })));
    assert!(matches!(
        ca.mul(&cb, &h.keys),
        Err(FidesError::LevelMismatch { .. })
    ));
}

#[test]
fn fusion_off_produces_identical_results() {
    let params = CkksParameters::toy().with_fusion(fides_core::FusionConfig::none());
    let mut h_off = Harness::with_params(params, &[1]);
    let mut h_on = Harness::with_params(CkksParameters::toy(), &[1]);
    let a = ramp(32);
    let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 0.1).collect();
    for h in [&mut h_off, &mut h_on] {
        let ca = h.encrypt(&a);
        let cb = h.encrypt(&b);
        let mut prod = ca.mul(&cb, &h.keys).unwrap();
        prod.rescale_in_place().unwrap();
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert_close(&h.decrypt(&prod), &expect, 1e-4, "fusion ablation");
        let rot = ca.rotate(1, &h.keys).unwrap();
        let expect: Vec<f64> = (0..32).map(|i| a[(i + 1) % 32]).collect();
        assert_close(&h.decrypt(&rot), &expect, 1e-4, "fusion ablation rotate");
    }
}

#[test]
fn graph_exec_is_bit_identical_to_eager_dispatch() {
    // The stream-graph engine defers timing, never math: the same circuit
    // run with graph execution on and off must produce identical limb data.
    let mut h_graph = Harness::with_params(CkksParameters::toy(), &[1]);
    let mut h_eager = Harness::with_params(CkksParameters::toy().with_graph_exec(false), &[1]);
    let a = ramp(32);
    let b: Vec<f64> = a.iter().map(|x| 0.25 - x).collect();
    let mut frames = Vec::new();
    for h in [&mut h_graph, &mut h_eager] {
        let ca = h.encrypt(&a);
        let cb = h.encrypt(&b);
        let mut prod = ca.mul(&cb, &h.keys).unwrap();
        prod.rescale_in_place().unwrap();
        let rot = prod.rotate(1, &h.keys).unwrap();
        frames.push(adapter::store_ciphertext(&rot));
    }
    assert_eq!(
        frames[0].c0.limbs, frames[1].c0.limbs,
        "graph replay changed c0"
    );
    assert_eq!(
        frames[0].c1.limbs, frames[1].c1.limbs,
        "graph replay changed c1"
    );
}

#[test]
fn graph_fusion_reduces_launches_without_changing_results() {
    let fusion_off = fides_core::FusionConfig {
        elementwise: false,
        ..fides_core::FusionConfig::default()
    };
    let mut h_fused = Harness::with_params(CkksParameters::toy(), &[]);
    let mut h_plain = Harness::with_params(CkksParameters::toy().with_fusion(fusion_off), &[]);
    let a = ramp(32);
    let b: Vec<f64> = a.iter().map(|x| x + 0.125).collect();
    let mut launches = Vec::new();
    let mut frames = Vec::new();
    for h in [&mut h_fused, &mut h_plain] {
        let ca = h.encrypt(&a);
        let cb = h.encrypt(&b);
        h.ctx.gpu().reset_stats();
        let mut prod = ca.mul(&cb, &h.keys).unwrap();
        prod.rescale_in_place().unwrap();
        launches.push(h.ctx.gpu().stats().kernel_launches);
        frames.push(adapter::store_ciphertext(&prod));
    }
    assert!(
        launches[0] < launches[1],
        "fusion must strictly reduce kernel launches ({} vs {})",
        launches[0],
        launches[1]
    );
    assert_eq!(frames[0].c0.limbs, frames[1].c0.limbs);
    assert_eq!(frames[0].c1.limbs, frames[1].c1.limbs);
    let sched = h_fused.ctx.sched_stats();
    assert!(sched.fused_kernels > 0, "ledger records fused kernels");
    assert_eq!(
        sched.recorded_kernels,
        sched.planned_launches + sched.fused_kernels,
        "ledger is self-consistent"
    );
}

#[test]
fn scale_drift_stays_within_tolerance_over_depth() {
    let mut h = Harness::new(&[]);
    let a = ramp(16);
    let mut acc = h.encrypt(&a);
    let other = h.encrypt(&a);
    // Multiply by a fresh ciphertext at matching level each time.
    let depth = h.ctx.max_level().min(3);
    for _ in 0..depth {
        let mut partner = other.duplicate();
        partner.drop_to_level(acc.level()).unwrap();
        // Bring scales together via the standard ladder.
        let drift: f64 = acc.scale() / partner.scale() - 1.0;
        assert!(drift.abs() < 1e-3, "pre-mult drift {drift}");
        acc = acc.mul(&partner, &h.keys).unwrap();
        acc.rescale_in_place().unwrap();
    }
    // The message should still be a^(depth+1) within tolerance.
    let mut expect = a.clone();
    for _ in 0..depth {
        expect = expect.iter().zip(&a).map(|(x, y)| x * y).collect();
    }
    assert_close(&h.decrypt(&acc), &expect, 5e-3, "drifted chain");
}

#[test]
fn cost_only_mode_runs_hmult_schedule_at_paper_scale_quickly() {
    // Full paper parameters in cost-only mode: the complete kernel schedule
    // must execute in well under a second of wall time.
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(CkksParameters::paper_default(), Arc::clone(&gpu));
    let keys = synth_keys(&ctx);
    let a = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), 1 << 15);
    let b = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), 1 << 15);
    let t0 = gpu.sync();
    let mut prod = a.mul(&b, &keys).unwrap();
    prod.rescale_in_place().unwrap();
    let dt = gpu.sync() - t0;
    // HMult + Rescale on the 4090 model lands in the ~1 ms regime (Table V).
    assert!(
        dt > 100.0 && dt < 10_000.0,
        "simulated HMult+Rescale = {dt} µs"
    );
}

/// Builds placeholder (cost-only) switching keys directly on the device.
fn synth_keys(ctx: &Arc<CkksContext>) -> EvalKeySet {
    use fides_client::{Domain, RawKeyDigit, RawPoly, RawSwitchingKey};
    let chain = ctx.max_level() + 1 + ctx.alpha();
    // In cost-only mode limb contents are ignored; build zero-shaped keys.
    let raw = RawSwitchingKey {
        digits: (0..ctx.raw_params().dnum)
            .map(|_| RawKeyDigit {
                b: RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: Domain::Eval,
                },
                a: RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: Domain::Eval,
                },
            })
            .collect(),
    };
    let mut keys = EvalKeySet::new();
    keys.set_mult(adapter::load_switching_key(ctx, &raw).unwrap());
    keys
}
