//! Functional bootstrapping tests: the complete pipeline executed bit-exactly
//! at reduced ring degree, validated by client-side decryption — the
//! integration-test methodology of the paper applied to its headline feature.
//!
//! The pipeline is backend-generic; these tests drive it through the
//! simulated-GPU backend (the workspace-level `bootstrap_roundtrip` suite
//! adds the CPU backend and cross-backend bit-identity).

use std::sync::Arc;

use fides_client::{ClientContext, KeyGenerator, RawSwitchingKey, SecretKey};
use fides_core::boot::{chebyshev_coefficients, eval_chebyshev_plain, ChebyshevEvaluator};
use fides_core::{
    adapter, BackendCt, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters, EvalBackend,
    EvalKeySet, GpuSimBackend,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Harness {
    ctx: Arc<CkksContext>,
    client: ClientContext,
    sk: SecretKey,
    pk: fides_client::RawPublicKey,
    rng: StdRng,
}

impl Harness {
    fn new(params: CkksParameters) -> Self {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
        let ctx = CkksContext::new(params, gpu);
        let client = ClientContext::new(ctx.raw_params().clone());
        let mut kg = KeyGenerator::new(&client, 0xb001);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        Self {
            ctx,
            client,
            sk,
            pk,
            rng: StdRng::seed_from_u64(0x5eed),
        }
    }

    fn keys_with_rotations(&self, shifts: &[i32]) -> EvalKeySet {
        let mut kg = KeyGenerator::new(&self.client, 0xb002);
        // Keys must match self.sk, so generate from the stored secret.
        let relin = kg.relinearization_key(&self.sk);
        let rots: Vec<(i32, RawSwitchingKey)> = shifts
            .iter()
            .map(|&k| (k, kg.rotation_key(&self.sk, k)))
            .collect();
        let conj = kg.conjugation_key(&self.sk);
        adapter::load_eval_keys(&self.ctx, Some(&relin), &rots, Some(&conj)).unwrap()
    }

    /// A gpu-sim backend holding keys for `shifts` (plus relin + conj).
    fn backend(&self, shifts: &[i32]) -> GpuSimBackend {
        GpuSimBackend::new(Arc::clone(&self.ctx), self.keys_with_rotations(shifts))
    }

    fn encrypt_at(&mut self, values: &[f64], level: usize) -> BackendCt {
        let pt = self
            .client
            .encode_real(values, self.ctx.standard_scale(level), level)
            .unwrap();
        let raw = self.client.encrypt(&pt, &self.pk, &mut self.rng).unwrap();
        BackendCt::Device(adapter::load_ciphertext(&self.ctx, &raw).unwrap())
    }

    fn decrypt(&self, ct: &BackendCt) -> Vec<f64> {
        let BackendCt::Device(ct) = ct else {
            panic!("harness produces device ciphertexts")
        };
        let raw = adapter::store_ciphertext(ct);
        self.client
            .decode_real(&self.client.decrypt(&raw, &self.sk).unwrap())
            .unwrap()
    }
}

/// The encrypted Chebyshev evaluator must reproduce plaintext Clenshaw
/// evaluation for a generic smooth function.
#[test]
fn chebyshev_evaluator_matches_plain() {
    let mut h = Harness::new(CkksParameters::toy_boot());
    let backend = h.backend(&[]);
    let degree = 23;
    let coeffs = chebyshev_coefficients(|x| (1.5 * x).sin() * 0.7 + 0.2 * x, -1.0, 1.0, degree);
    let inputs: Vec<f64> = (0..16)
        .map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / 16.0)
        .collect();
    let ct = h.encrypt_at(&inputs, h.ctx.max_level());
    let ev = ChebyshevEvaluator::new(&backend, &ct, degree).unwrap();
    let out = ev.evaluate(&coeffs).unwrap();
    let consumed = h.ctx.max_level() - out.level();
    assert!(
        consumed <= ChebyshevEvaluator::depth_estimate(degree),
        "actual depth {consumed} exceeds estimate {}",
        ChebyshevEvaluator::depth_estimate(degree)
    );
    let got = h.decrypt(&out);
    for (i, (&x, g)) in inputs.iter().zip(&got).enumerate() {
        let expect = eval_chebyshev_plain(&coeffs, -1.0, 1.0, x);
        assert!((g - expect).abs() < 1e-4, "slot {i}: {g} vs {expect}");
    }
}

/// ApproxModEval in isolation: cos series + double angles must compute
/// sin(π·K·u) for u ∈ [−1, 1].
#[test]
fn approx_mod_sine_pipeline() {
    let mut h = Harness::new(CkksParameters::toy_boot());
    let backend = h.backend(&[]);
    let k_range = 128.0f64;
    let r = 6u32;
    let degree = 40usize;
    let coeffs = chebyshev_coefficients(
        |w| ((std::f64::consts::PI * k_range * w - std::f64::consts::FRAC_PI_2) / 64.0).cos(),
        -1.0,
        1.0,
        degree,
    );
    // Inputs small enough that sin stays in its principal behaviour zone.
    let inputs: Vec<f64> = (0..16)
        .map(|i| (i as f64 - 8.0) / (k_range * 4.0))
        .collect();
    let ct = h.encrypt_at(&inputs, h.ctx.max_level());
    let ev = ChebyshevEvaluator::new(&backend, &ct, degree).unwrap();
    let mut c = ev.evaluate(&coeffs).unwrap();
    for _ in 0..r {
        // double angle: 2c² − 1
        let mut sq = backend.square(&c).unwrap();
        backend.rescale(&mut sq).unwrap();
        c = backend
            .add_scalar(&backend.mul_int(&sq, 2).unwrap(), -1.0)
            .unwrap();
    }
    let got = h.decrypt(&c);
    for (i, (&u, g)) in inputs.iter().zip(&got).enumerate() {
        let expect = (std::f64::consts::PI * k_range * u).sin();
        assert!(
            (g - expect).abs() < 1e-3,
            "slot {i}: {g} vs {expect} (u={u})"
        );
    }
}

/// Full bootstrap: message preserved, level refreshed.
#[test]
fn bootstrap_refreshes_levels_and_preserves_message() {
    let mut h = Harness::new(CkksParameters::toy_boot());
    let slots = 8usize;
    let config = BootstrapConfig::for_slots(slots);
    let shifts = fides_core::boot::required_rotations(h.ctx.n(), &config);
    let backend = h.backend(&shifts);
    let boot = Bootstrapper::new(&backend, &h.client, config).unwrap();

    let values: Vec<f64> = (0..slots)
        .map(|i| 0.35 * ((i as f64) * 0.9).sin())
        .collect();
    // Encrypt at the bottom of the chain (level 0): nothing left to compute.
    let mut ct = h.encrypt_at(&values, h.ctx.max_level());
    backend.drop_to_level(&mut ct, 0).unwrap();
    assert_eq!(ct.level(), 0);

    let refreshed = boot.bootstrap(&backend, &ct).unwrap();
    assert!(
        refreshed.level() >= boot.min_output_level(),
        "refreshed level {} below promised {}",
        refreshed.level(),
        boot.min_output_level()
    );
    assert!(
        refreshed.level() >= 3,
        "must regain usable multiplicative depth"
    );

    let got = h.decrypt(&refreshed);
    for (i, (v, g)) in values.iter().zip(&got).enumerate() {
        assert!((v - g).abs() < 0.02, "slot {i}: {g} vs {v}");
    }
}

/// Bootstrapped ciphertexts must support further computation, and the timed
/// entry point must attribute the pipeline to its phases.
#[test]
fn bootstrap_output_is_computable() {
    let mut h = Harness::new(CkksParameters::toy_boot());
    let slots = 8usize;
    let config = BootstrapConfig::for_slots(slots);
    let shifts = fides_core::boot::required_rotations(h.ctx.n(), &config);
    let backend = h.backend(&shifts);
    let boot = Bootstrapper::new(&backend, &h.client, config).unwrap();

    let values: Vec<f64> = (0..slots).map(|i| 0.2 + 0.05 * i as f64).collect();
    let mut ct = h.encrypt_at(&values, h.ctx.max_level());
    backend.drop_to_level(&mut ct, 0).unwrap();
    let (refreshed, phases) = boot.bootstrap_phased(&backend, &ct).unwrap();
    assert!(phases.total_us > 0.0);
    assert!(
        phases.coeff_to_slot_us > 0.0 && phases.eval_mod_us > 0.0 && phases.slot_to_coeff_us > 0.0,
        "every phase must be attributed simulated time: {phases:?}"
    );

    // Square the refreshed ciphertext — impossible before bootstrapping.
    let mut sq = backend.square(&refreshed).unwrap();
    backend.rescale(&mut sq).unwrap();
    let got = h.decrypt(&sq);
    for (i, (v, g)) in values.iter().zip(&got).enumerate() {
        assert!((v * v - g).abs() < 0.03, "slot {i}: {g} vs {}", v * v);
    }
}

/// Setup must reject chains too shallow for the circuit.
#[test]
fn bootstrap_rejects_shallow_chains() {
    let h = Harness::new(CkksParameters::toy());
    let backend = h.backend(&[]);
    let err = Bootstrapper::new(&backend, &h.client, BootstrapConfig::for_slots(8));
    assert!(err.is_err(), "4-level chain cannot host bootstrapping");
}

/// Cost-only mode: the full bootstrap kernel schedule at paper scale.
#[test]
fn bootstrap_cost_only_at_paper_scale() {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(CkksParameters::paper_default(), Arc::clone(&gpu));
    let client = ClientContext::new(ctx.raw_params().clone());
    let config = BootstrapConfig::for_slots(1 << 14);

    // Placeholder keys (values irrelevant in cost-only mode).
    let mut keys = EvalKeySet::new();
    let chain = ctx.max_level() + 1 + ctx.alpha();
    let mk = || fides_client::RawSwitchingKey {
        digits: (0..ctx.raw_params().dnum)
            .map(|_| fides_client::RawKeyDigit {
                b: fides_client::RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: fides_client::Domain::Eval,
                },
                a: fides_client::RawPoly {
                    limbs: vec![Vec::new(); chain],
                    domain: fides_client::Domain::Eval,
                },
            })
            .collect(),
    };
    keys.set_mult(adapter::load_switching_key(&ctx, &mk()).unwrap());
    keys.set_conj(adapter::load_switching_key(&ctx, &mk()).unwrap());
    for shift in fides_core::boot::required_rotations(ctx.n(), &config) {
        let g = fides_client::galois_for_rotation(shift, ctx.n());
        keys.insert_rotation(g, adapter::load_switching_key(&ctx, &mk()).unwrap());
    }

    let backend = GpuSimBackend::new(Arc::clone(&ctx), keys);
    let boot = Bootstrapper::new(&backend, &client, config).unwrap();
    let ct = BackendCt::Device(adapter::placeholder_ciphertext(
        &ctx,
        0,
        ctx.standard_scale(0),
        1 << 14,
    ));
    let t0 = gpu.sync();
    let refreshed = boot.bootstrap(&backend, &ct).unwrap();
    let dt_us = gpu.sync() - t0;
    assert!(refreshed.level() >= boot.min_output_level());
    // Table VI: FIDESlib bootstraps 16384 slots in ~112 ms on the 4090.
    // The simulated figure must land in the same order of magnitude.
    assert!(
        dt_us > 20_000.0 && dt_us < 2_000_000.0,
        "simulated bootstrap = {dt_us} µs, outside the plausible window"
    );
}
