//! Table III ablation: modular reduction methods measured on the host.
//!
//! Barrett (the FIDESlib default), Shoup (constant-operand fast path) and
//! Montgomery, applied over full limbs — the relative ordering mirrors the
//! wide-vs-low multiplication trade-off of the paper's Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fides_math::{generate_ntt_primes, Modulus, MontgomeryOps, ShoupPrecomp};
use std::hint::black_box;

fn bench_modmul(c: &mut Criterion) {
    let n = 1 << 14;
    let p = generate_ntt_primes(59, 1, 1 << 14)[0];
    let m = Modulus::new(p);
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % p
    };
    let a: Vec<u64> = (0..n).map(|_| next()).collect();
    let b: Vec<u64> = (0..n).map(|_| next()).collect();
    let w = next();

    let mut group = c.benchmark_group("modmul");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("barrett", n), |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= m.mul_mod(black_box(a[i]), black_box(b[i]));
            }
            acc
        })
    });

    group.bench_function(BenchmarkId::new("shoup_const", n), |bench| {
        let sp = ShoupPrecomp::new(w, &m);
        bench.iter(|| {
            let mut acc = 0u64;
            for &x in a.iter() {
                acc ^= sp.mul(black_box(x), &m);
            }
            acc
        })
    });

    group.bench_function(BenchmarkId::new("montgomery", n), |bench| {
        let mont = MontgomeryOps::new(&m);
        let am: Vec<u64> = a.iter().map(|&x| mont.to_mont(x)).collect();
        let bm: Vec<u64> = b.iter().map(|&x| mont.to_mont(x)).collect();
        bench.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= mont.mul(black_box(am[i]), black_box(bm[i]));
            }
            acc
        })
    });

    group.bench_function(BenchmarkId::new("naive_u128_rem", n), |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for i in 0..n {
                acc ^= (black_box(a[i]) as u128 * black_box(b[i]) as u128 % p as u128) as u64;
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench_modmul);
criterion_main!(benches);
