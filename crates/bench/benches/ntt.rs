//! NTT microbenchmarks: radix-2 vs hierarchical/2D organization and the
//! inverse transform, measured on the host across ring degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fides_math::{generate_ntt_primes, Modulus, Ntt2d, NttTable};
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [12u32, 14, 16] {
        let n = 1usize << log_n;
        let p = generate_ntt_primes(59, 1, n)[0];
        let table = NttTable::new(n, Modulus::new(p));
        let two_d = Ntt2d::new(table.clone());
        let mut state = 7u64;
        let data: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % p
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_function(BenchmarkId::new("radix2_forward", n), |b| {
            b.iter_batched(
                || data.clone(),
                |mut v| {
                    table.forward_inplace(black_box(&mut v));
                    v
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("hierarchical_forward", n), |b| {
            b.iter_batched(
                || data.clone(),
                |mut v| {
                    two_d.forward_pass1(black_box(&mut v));
                    two_d.forward_pass2(black_box(&mut v));
                    v
                },
                criterion::BatchSize::LargeInput,
            )
        });

        group.bench_function(BenchmarkId::new("radix2_inverse", n), |b| {
            let mut eval = data.clone();
            table.forward_inplace(&mut eval);
            b.iter_batched(
                || eval.clone(),
                |mut v| {
                    table.inverse_inplace(black_box(&mut v));
                    v
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
