//! Host-side wall-clock microbenchmarks of the functional CKKS primitives at
//! test scale (the library's own performance, independent of the simulator).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, Ciphertext, CkksContext, CkksParameters, EvalKeySet};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Setup {
    ctx: Arc<CkksContext>,
    keys: EvalKeySet,
    a: Ciphertext,
    b: Ciphertext,
}

fn setup() -> Setup {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let ctx = CkksContext::new(CkksParameters::new(12, 6, 45, 3).unwrap(), gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 1);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let rot = kg.rotation_key(&sk, 1);
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &[(1, rot)], None).unwrap();
    let data: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.001).sin()).collect();
    let mut rng = StdRng::seed_from_u64(2);
    let pt = client
        .encode_real(&data, ctx.fresh_scale(), ctx.max_level())
        .unwrap();
    let raw_a = client.encrypt(&pt, &pk, &mut rng).unwrap();
    let raw_b = client.encrypt(&pt, &pk, &mut rng).unwrap();
    let a = adapter::load_ciphertext(&ctx, &raw_a).unwrap();
    let b = adapter::load_ciphertext(&ctx, &raw_b).unwrap();
    Setup { ctx, keys, a, b }
}

fn bench_primitives(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("primitives_n4096");
    group.sample_size(20);

    group.bench_function("hadd", |bench| bench.iter(|| s.a.add(&s.b).unwrap()));
    group.bench_function("scalar_mult", |bench| bench.iter(|| s.a.mul_scalar(1.5)));
    group.bench_function("hmult", |bench| {
        bench.iter(|| s.a.mul(&s.b, &s.keys).unwrap())
    });
    group.bench_function("hmult_rescale", |bench| {
        bench.iter(|| {
            let mut p = s.a.mul(&s.b, &s.keys).unwrap();
            p.rescale_in_place().unwrap();
            p
        })
    });
    group.bench_function("hsquare", |bench| {
        bench.iter(|| s.a.square(&s.keys).unwrap())
    });
    group.bench_function("hrotate", |bench| {
        bench.iter(|| s.a.rotate(1, &s.keys).unwrap())
    });
    group.bench_function("hoisted_rotations_x4", |bench| {
        bench.iter(|| s.a.hoisted_rotations(&[0, 1], &s.keys).unwrap())
    });
    let _ = &s.ctx;
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
