//! The perf-regression gate: compares a fresh bench JSON against the
//! committed baseline.
//!
//! Simulated metrics (kernel launches, simulated microseconds) are
//! **deterministic** — same code, same schedule, same numbers on any
//! runner — so CI can fail hard when they regress. Wall-clock metrics vary
//! with the runner and are report-only. Classification is by metric path:
//!
//! | path                                         | class       |
//! |----------------------------------------------|-------------|
//! | contains `wall` or under `cpu_reference`     | report-only |
//! | contains `kernel_launches` / `sim_us`        | **gated**   |
//! | contains `peak_device_bytes`                 | **gated**   |
//! | under `gpu_sim` and ends with `_us`          | **gated**   |
//! | anything else (config echoes, derived ratios)| report-only |
//!
//! The `wall` rule is what keeps `wall_req_per_sec` report-only **by
//! design**: it is wall-clock serving throughput, noise-dominated on
//! small CI containers (BENCH_PR4 showed multi-× run-to-run swings on a
//! 1-core runner), so it must never trip the gate — the
//! `classification_table` test pins this.

use crate::json::Json;

/// How a metric participates in the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Deterministic simulated metric: an increase beyond the threshold
    /// fails the gate.
    Gated,
    /// Reported in the table, never failing (wall clock, config echoes).
    ReportOnly,
}

/// Classifies a flattened metric path (see module docs for the table).
pub fn classify(path: &str) -> MetricClass {
    let lower = path.to_ascii_lowercase();
    // Everything wall-clock is report-only — explicitly including
    // `wall_req_per_sec`, which is noise-dominated on small CI containers
    // (BENCH_PR4 showed multi-× run-to-run swings on a 1-core runner) and
    // must never trip the gate. This check runs before the gated rules,
    // so a wall metric can never classify as gated-simulated.
    if lower.contains("wall") || lower.contains("cpu_reference") {
        return MetricClass::ReportOnly;
    }
    if lower.contains("kernel_launches") || lower.contains("sim_us") {
        return MetricClass::Gated;
    }
    // Planner-derived device-memory footprint: deterministic (the liveness
    // pass sees the same plan on every runner), so a growth in peak bytes
    // is a genuine regression.
    if lower.contains("peak_device_bytes") {
        return MetricClass::Gated;
    }
    if lower.contains("gpu_sim") {
        // Under the simulated device every *_us phase timing is
        // deterministic simulated time.
        if let Some(leaf) = lower.rsplit('.').next() {
            if leaf.ends_with("_us") {
                return MetricClass::Gated;
            }
        }
    }
    MetricClass::ReportOnly
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Flattened metric path.
    pub path: String,
    /// Committed baseline value.
    pub committed: Option<f64>,
    /// Freshly measured value.
    pub fresh: Option<f64>,
    /// Gate participation.
    pub class: MetricClass,
    /// Relative change `(fresh − committed) / committed` (`None` when
    /// either side is missing or the baseline is 0).
    pub delta: Option<f64>,
    /// True when this row fails the gate.
    pub regressed: bool,
}

/// The comparison of one bench file against its baseline.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Every metric present on either side, in path order.
    pub rows: Vec<MetricRow>,
    /// The regression threshold applied (relative, e.g. `0.10`).
    pub threshold: f64,
}

impl DiffReport {
    /// Compares two parsed bench documents. Wall-clock metrics are
    /// report-only (the default CI gate).
    pub fn compare(committed: &Json, fresh: &Json, threshold: f64) -> DiffReport {
        Self::compare_with(committed, fresh, threshold, false)
    }

    /// Compares two parsed bench documents, optionally **banding** wall-clock
    /// metrics: with `gate_wall` set, any metric whose path contains `wall`
    /// fails the gate when it moves outside `±threshold` in *either*
    /// direction (wall numbers have no deterministic better/worse — a 2×
    /// "improvement" usually means the runner changed, which the nightly
    /// lane also wants to hear about). Simulated metrics keep their one-sided
    /// gate: improvements always pass.
    pub fn compare_with(committed: &Json, fresh: &Json, threshold: f64, gate_wall: bool) -> Self {
        let committed = committed.numeric_leaves();
        let fresh = fresh.numeric_leaves();
        let mut paths: Vec<&String> = committed.keys().chain(fresh.keys()).collect();
        paths.sort();
        paths.dedup();
        let rows = paths
            .into_iter()
            .map(|path| {
                let c = committed.get(path).copied();
                let f = fresh.get(path).copied();
                let mut class = classify(path);
                let delta = match (c, f) {
                    (Some(c), Some(f)) if c != 0.0 => Some((f - c) / c),
                    _ => None,
                };
                let banded = gate_wall && path.to_ascii_lowercase().contains("wall");
                let regressed = if class == MetricClass::Gated {
                    delta.is_some_and(|d| d > threshold)
                } else if banded {
                    delta.is_some_and(|d| d.abs() > threshold)
                } else {
                    false
                };
                if banded {
                    // Surface the banded wall rows as gate participants in
                    // the markdown table.
                    class = MetricClass::Gated;
                }
                MetricRow {
                    path: path.clone(),
                    committed: c,
                    fresh: f,
                    class,
                    delta,
                    regressed,
                }
            })
            .collect();
        DiffReport { rows, threshold }
    }

    /// The rows failing the gate.
    pub fn regressions(&self) -> Vec<&MetricRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Renders the comparison as a GitHub-flavoured markdown table:
    /// every gated row, plus report-only rows whose change exceeds the
    /// threshold (the rest are summarized).
    pub fn to_markdown(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let status = if self.regressions().is_empty() {
            "✅ pass"
        } else {
            "❌ REGRESSED"
        };
        let _ = writeln!(
            out,
            "### perf gate: `{label}` — {status} (threshold {:.0}%)\n",
            self.threshold * 100.0
        );
        let _ = writeln!(out, "| metric | committed | fresh | Δ | gate |");
        let _ = writeln!(out, "|---|---:|---:|---:|---|");
        let mut hidden = 0usize;
        for row in &self.rows {
            let noteworthy = row.class == MetricClass::Gated
                || row.delta.is_some_and(|d| d.abs() > self.threshold)
                || row.committed.is_none()
                || row.fresh.is_none();
            if !noteworthy {
                hidden += 1;
                continue;
            }
            let fmt_val = |v: Option<f64>| match v {
                Some(v) => format!("{v:.2}"),
                None => "—".into(),
            };
            let delta = match row.delta {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "—".into(),
            };
            let gate = match (row.class, row.regressed) {
                (MetricClass::Gated, true) => "❌",
                (MetricClass::Gated, false) => "gated",
                (MetricClass::ReportOnly, _) => "report",
            };
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {} | {} |",
                row.path,
                fmt_val(row.committed),
                fmt_val(row.fresh),
                delta,
                gate
            );
        }
        if hidden > 0 {
            let _ = writeln!(
                out,
                "\n_{hidden} report-only metrics within ±{:.0}% omitted._",
                self.threshold * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table() {
        assert_eq!(
            classify("gpu_sim.by_batch[0].kernel_launches"),
            MetricClass::Gated
        );
        assert_eq!(classify("gpu_sim.by_batch[0].sim_us"), MetricClass::Gated);
        assert_eq!(
            classify("gpu_sim.phases_fused.coeff_to_slot_us"),
            MetricClass::Gated
        );
        assert_eq!(
            classify("gpu_sim.by_batch[0].wall_req_per_sec"),
            MetricClass::ReportOnly
        );
        // The wall rule precedes the gated rules, so a wall metric under
        // `gpu_sim` with a gated-looking suffix still reports only.
        assert_eq!(
            classify("gpu_sim.sim.wall_req_per_sec_us"),
            MetricClass::ReportOnly
        );
        assert_eq!(
            classify("gpu_sim.by_sched[0].peak_device_bytes"),
            MetricClass::Gated
        );
        assert_eq!(
            classify("gpu_sim.by_sched[0].allocations"),
            MetricClass::ReportOnly
        );
        assert_eq!(
            classify("gpu_sim.plan_cache.hit_rate_pct"),
            MetricClass::ReportOnly
        );
        assert_eq!(
            classify("cpu_reference.by_workers[0].hmult_rescale_us"),
            MetricClass::ReportOnly
        );
        assert_eq!(classify("lr_boot.wall_us"), MetricClass::ReportOnly);
        assert_eq!(classify("pr"), MetricClass::ReportOnly);
        assert_eq!(
            classify("gpu_sim.batch16_vs_serial.launch_reduction_pct"),
            MetricClass::ReportOnly
        );
    }

    fn doc(launches: u64, wall: f64) -> Json {
        Json::parse(&format!(
            r#"{{"gpu_sim": {{"kernel_launches": {launches}, "wall_us": {wall}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn gate_fails_only_on_gated_regressions() {
        // +25% launches: regressed.
        let report = DiffReport::compare(&doc(1000, 5.0), &doc(1250, 5.0), 0.10);
        assert_eq!(report.regressions().len(), 1);
        assert!(report.to_markdown("x").contains("REGRESSED"));

        // +5% launches: inside threshold.
        let report = DiffReport::compare(&doc(1000, 5.0), &doc(1050, 5.0), 0.10);
        assert!(report.regressions().is_empty());

        // Launches *improve*, wall clock doubles: wall is report-only.
        let report = DiffReport::compare(&doc(1000, 5.0), &doc(800, 10.0), 0.10);
        assert!(report.regressions().is_empty());
        assert!(report.to_markdown("x").contains("pass"));
    }

    #[test]
    fn gate_wall_bands_wall_metrics_both_directions() {
        // Default gate: wall doubling passes.
        let report = DiffReport::compare(&doc(1000, 5.0), &doc(1000, 10.0), 0.30);
        assert!(report.regressions().is_empty());

        // Nightly gate: +100% wall trips the ±30% band.
        let report = DiffReport::compare_with(&doc(1000, 5.0), &doc(1000, 10.0), 0.30, true);
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].path, "gpu_sim.wall_us");

        // A -50% "improvement" is also out of band — the runner changed.
        let report = DiffReport::compare_with(&doc(1000, 5.0), &doc(1000, 2.5), 0.30, true);
        assert_eq!(report.regressions().len(), 1);

        // Inside the band: passes, but the wall row renders as a gate
        // participant.
        let report = DiffReport::compare_with(&doc(1000, 5.0), &doc(1000, 6.0), 0.30, true);
        assert!(report.regressions().is_empty());
        let wall = report
            .rows
            .iter()
            .find(|r| r.path == "gpu_sim.wall_us")
            .unwrap();
        assert_eq!(wall.class, MetricClass::Gated);

        // Simulated metrics keep one-sided gating even in wall mode: a big
        // launch-count improvement never fails.
        let report = DiffReport::compare_with(&doc(1000, 5.0), &doc(100, 5.0), 0.30, true);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn missing_and_new_keys_never_fail() {
        let a = Json::parse(r#"{"gpu_sim": {"kernel_launches": 10}}"#).unwrap();
        let b = Json::parse(r#"{"gpu_sim": {"sim_us": 4.0}}"#).unwrap();
        let report = DiffReport::compare(&a, &b, 0.10);
        assert!(report.regressions().is_empty());
        let md = report.to_markdown("x");
        assert!(md.contains("kernel_launches"));
        assert!(md.contains("sim_us"));
        assert!(md.contains('—'), "missing sides shown as dashes");
    }

    #[test]
    fn identical_files_pass() {
        let text = std::fs::read_to_string("../../BENCH_PR2.json").unwrap();
        let v = Json::parse(&text).unwrap();
        let report = DiffReport::compare(&v, &v, 0.10);
        assert!(report.regressions().is_empty());
        assert!(report.rows.iter().any(|r| r.class == MetricClass::Gated));
    }
}
