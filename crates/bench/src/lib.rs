//! # fides-bench
//!
//! Benchmark harness regenerating every table and figure of the FIDESlib
//! paper's evaluation (§IV). Each binary prints the paper's rows/series next
//! to the values this reproduction produces; see EXPERIMENTS.md for the
//! recorded comparison.

#![warn(missing_docs)]

pub mod diff;
pub mod json;

use std::sync::Arc;

use fides_gpu_sim::GpuSim;

/// Times a closure in simulated microseconds: device-syncs, runs, syncs.
pub fn sim_time_us<F: FnOnce()>(gpu: &Arc<GpuSim>, f: F) -> f64 {
    let t0 = gpu.sync();
    f();
    gpu.sync() - t0
}

/// Formats microseconds adaptively (µs / ms / s).
pub fn fmt_us(us: f64) -> String {
    if us < 1_000.0 {
        format!("{us:8.2} µs")
    } else if us < 1_000_000.0 {
        format!("{:8.3} ms", us / 1_000.0)
    } else {
        format!("{:8.3} s ", us / 1_000_000.0)
    }
}

/// Prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert!(fmt_us(12.5).contains("µs"));
        assert!(fmt_us(12_500.0).contains("ms"));
        assert!(fmt_us(12_500_000.0).contains("s"));
    }

    #[test]
    fn sim_time_is_non_negative() {
        let gpu = GpuSim::new(
            fides_gpu_sim::DeviceSpec::rtx_4090(),
            fides_gpu_sim::ExecMode::CostOnly,
        );
        let dt = sim_time_us(&gpu, || {});
        assert!(dt >= 0.0);
    }
}
