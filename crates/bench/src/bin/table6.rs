//! Table VI: bootstrapping performance and amortized throughput vs slots.
//!
//! `[logN, L, Δ, dnum] = [16, 29, 59, 4]`, slots ∈ {64, 512, 16384, 32768}.
//! Amortized time = T / (slots · levels-remaining), as in the paper.

use std::sync::Arc;

use fides_baselines::{cpu_context, ryzen_1t, ryzen_hexl_24t, synth_keys_with_rotations};
use fides_bench::{fmt_us, print_table, sim_time_us};
use fides_client::ClientContext;
use fides_core::{
    adapter, boot, BackendCt, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters,
    EvalBackend, GpuSimBackend,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

fn boot_us(
    params: &CkksParameters,
    spec: DeviceSpec,
    cpu_flavor: bool,
    slots: usize,
) -> (f64, usize) {
    let (gpu, ctx) = if cpu_flavor {
        cpu_context(params, spec)
    } else {
        let gpu = GpuSim::new(spec, ExecMode::CostOnly);
        let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
        (gpu, ctx)
    };
    let client = ClientContext::new(ctx.raw_params().clone());
    let config = BootstrapConfig::for_slots(slots);
    let shifts = boot::required_rotations(ctx.n(), &config);
    let keys = synth_keys_with_rotations(&ctx, &shifts);
    let backend = GpuSimBackend::new(Arc::clone(&ctx), keys);
    let booter = Bootstrapper::new(&backend, &client, config).expect("chain deep enough");
    let backend = backend.with_bootstrapper(booter);
    let ct = BackendCt::Device(adapter::placeholder_ciphertext(
        &ctx,
        0,
        ctx.standard_scale(0),
        slots,
    ));
    // Warm-up then measure.
    let _ = backend.bootstrap(&ct).unwrap();
    gpu.sync();
    let mut level_out = 0usize;
    let us = sim_time_us(&gpu, || {
        let r = backend.bootstrap(&ct).unwrap();
        level_out = r.level();
    });
    (us, level_out)
}

fn main() {
    let params = CkksParameters::paper_default().with_limb_batch(12);
    println!("Table VI reproduction — bootstrapping, [16, 29, 59, 4]");
    // (slots, paper: levels, 1T ms, HEXL ms, FIDESlib ms)
    let paper: &[(usize, usize, f64, f64, f64)] = &[
        (64, 13, 18_224.0, 5_204.0, 73.5),
        (512, 11, 18_268.0, 7_781.0, 93.3),
        (16_384, 9, 20_079.0, 9_281.0, 112.0),
        (32_768, 9, 28_635.0, 12_185.0, 146.0),
    ];

    let mut rows = Vec::new();
    for &(slots, p_levels, p_1t, p_hexl, p_fides) in paper {
        let (f_us, level) = boot_us(&params, DeviceSpec::rtx_4090(), false, slots);
        let (c1_us, _) = boot_us(&params, ryzen_1t(), true, slots);
        let (ch_us, _) = boot_us(&params, ryzen_hexl_24t(), true, slots);
        let amortized = f_us / (slots as f64 * level as f64);
        let p_amortized = p_fides * 1e3 / (slots as f64 * p_levels as f64);
        rows.push(vec![
            slots.to_string(),
            level.to_string(),
            p_levels.to_string(),
            fmt_us(c1_us),
            fmt_us(p_1t * 1e3),
            fmt_us(ch_us),
            fmt_us(p_hexl * 1e3),
            fmt_us(f_us),
            fmt_us(p_fides * 1e3),
            format!("{amortized:9.3} µs"),
            format!("{p_amortized:9.3} µs"),
            format!("{:5.0}x", ch_us / f_us),
        ]);
    }
    print_table(
        "Table VI: bootstrapping (T = total, A = amortized µs/(slot·level))",
        &[
            "slots",
            "levels",
            "(paper)",
            "OpenFHE-1T (model)",
            "(paper)",
            "HEXL-24T (model)",
            "(paper)",
            "FIDESlib 4090 (sim)",
            "(paper)",
            "amortized",
            "(paper)",
            "vs HEXL",
        ],
        &rows,
    );
    println!("\nNote: this reproduction's ApproxModEval uses a degree-40 cosine with 6");
    println!("double-angle iterations and evaluates both conjugate halves, so the level");
    println!("budget differs slightly from OpenFHE's production configuration.");
}
