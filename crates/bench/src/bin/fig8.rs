//! Fig. 8: HMult at maximum level across parameter sets, per GPU platform.
//!
//! Sets: `[13,5,36,2], [14,9,41,3], [15,15,47,3], [16,29,59,4],
//! [17,44,59,4]` — from latency-bound small workloads (favoring
//! high-frequency consumer GPUs) to throughput/bandwidth-bound large ones;
//! key-switching-key sizes span 2.3 MB → 360 MB and interact with each L2.

use std::sync::Arc;

use fides_baselines::synth_keys;
use fides_bench::print_table;
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

fn main() {
    println!("Fig. 8 reproduction — HMult (µs) at maximum level per parameter set");
    let sets = CkksParameters::fig8_sets();
    let mut rows: Vec<Vec<String>> = sets
        .iter()
        .map(|p| {
            vec![format!(
                "[{},{},{},{}]",
                p.log_n, p.levels, p.scale_bits, p.dnum
            )]
        })
        .collect();
    let mut headers: Vec<String> = vec!["params".into()];

    // KSK sizes first (paper: 2.3, 7.7, 20, 152, 360 MB).
    headers.push("KSK".into());
    for (row, params) in rows.iter_mut().zip(&sets) {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
        let keys = synth_keys(&ctx);
        row.push(format!("{:6.1} MB", keys.bytes() as f64 / 1e6));
    }

    for spec in DeviceSpec::all_gpus() {
        headers.push(spec.name.clone());
        for (row, params) in rows.iter_mut().zip(&sets) {
            let gpu = GpuSim::new(spec.clone(), ExecMode::CostOnly);
            let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
            let keys = synth_keys(&ctx);
            let ct = adapter::placeholder_ciphertext(
                &ctx,
                ctx.max_level(),
                ctx.fresh_scale(),
                ctx.n() / 2,
            );
            let run = || {
                let _ = ct.mul(&ct, &keys).unwrap();
            };
            run();
            gpu.sync();
            let t0 = gpu.sync();
            run();
            let dt = gpu.sync() - t0;
            row.push(format!("{dt:9.1}"));
        }
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("HMult (µs) per parameter set", &headers_ref, &rows);
    println!("\nPaper shape: small sets are kernel-latency-bound (high-frequency 4060 Ti /");
    println!("4090 win over the V100); large sets are bandwidth-bound; devices whose L2");
    println!("holds the KSK at some level gain (72 MB 4090 vs 152 MB keys at [16,29]).");
}
