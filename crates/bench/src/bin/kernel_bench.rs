//! Raw-speed kernel lane: scalar vs `u64x4` SIMD limb kernels (`BENCH_PR7.json`).
//!
//! Times the hot CPU limb kernels — NTT forward/inverse, elementwise
//! Barrett multiply, the key-switch inner-product accumulate, RNS base
//! conversion, and the rescale tail — **wall-clock**, with the SIMD slab
//! path off vs on ([`fides_math::set_simd_enabled`]), at `logN ∈ {13, 14,
//! 15}` × three limb counts. Both paths run the same code when the `simd`
//! cargo feature is absent, so the speedup column only means something
//! when built `--features simd` (CI's kernel lane does).
//!
//! Wall numbers are runner-dependent: every wall leaf carries `wall` in
//! its path so the default perf gate reports them without failing, and
//! the nightly lane bands them at ±30% (`bench_diff --gate-wall`). A
//! small deterministic `gpu_sim` section models the same kernel shapes on
//! the simulated device and stays hard-gated.
//!
//! Inline acceptance gates (only with the `simd` feature): the NTT and
//! key-switch accumulate kernels must beat scalar on wall clock
//! (geometric mean across sizes > 1.0×). The margin is deliberately just
//! "faster at all": CI containers are narrow (often 1–2 cores, shared),
//! so the honest claim is direction, not magnitude.
//!
//! ```text
//! cargo run --release --features simd --bin kernel_bench [OUT_PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fides_bench::print_table;
use fides_gpu_sim::{BufferId, DeviceSpec, ExecMode, GpuSim, KernelDesc, KernelKind};
use fides_math::{generate_ntt_primes, Modulus, NttTable, ShoupPrecomp};
use fides_rns::BaseConverter;

const OUT_PATH: &str = "BENCH_PR7.json";
const LOG_NS: [usize; 3] = [13, 14, 15];
const LIMB_COUNTS: [usize; 3] = [4, 8, 14];
/// Key-switch digits in the accumulate kernel (hybrid key switching:
/// `acc += digit_d · key_d` over dnum digits).
const DNUM: usize = 3;
/// Best-of repetitions per (kernel, path): wall timing on a shared
/// container is min-stable, not mean-stable.
const REPS: usize = 7;

/// Deterministic fill (splitmix64): the bench must produce the same
/// operand streams on every run so scalar and SIMD time identical work.
fn splitmix_fill(seed: u64, p: u64, out: &mut [u64]) {
    let mut s = seed;
    for x in out.iter_mut() {
        s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *x = (z ^ (z >> 31)) % p;
    }
}

fn limb_data(seed: u64, n: usize, moduli: &[Modulus]) -> Vec<Vec<u64>> {
    moduli
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mut v = vec![0u64; n];
            splitmix_fill(seed.wrapping_add(i as u64), m.value(), &mut v);
            v
        })
        .collect()
}

/// Times `op` best-of-[`REPS`] with the SIMD slabs forced **off**, then
/// **on**, each on freshly set-up data (one warm-up call per path).
/// Returns `(scalar_ns, simd_ns)`.
fn time_pair<D, S: Fn() -> D, F: FnMut(&mut D)>(setup: S, mut op: F) -> (f64, f64) {
    let mut run = |simd: bool| {
        fides_math::set_simd_enabled(Some(simd));
        let mut d = setup();
        op(&mut d);
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            op(&mut d);
            best = best.min(t.elapsed().as_nanos() as f64);
        }
        best
    };
    let scalar = run(false);
    let simd = run(true);
    (scalar, simd)
}

#[derive(Clone, Copy)]
struct KernelResult {
    scalar_ns_per_coeff: f64,
    simd_ns_per_coeff: f64,
    speedup: f64,
}

fn result(scalar_ns: f64, simd_ns: f64, coeffs: usize) -> KernelResult {
    KernelResult {
        scalar_ns_per_coeff: scalar_ns / coeffs as f64,
        simd_ns_per_coeff: simd_ns / coeffs as f64,
        speedup: scalar_ns / simd_ns,
    }
}

/// Per-kernel results at one `(log_n, limbs)` point, in [`KERNELS`] order.
struct SizeRow {
    log_n: usize,
    limbs: usize,
    kernels: Vec<KernelResult>,
}

const KERNELS: [&str; 7] = [
    "ntt_fwd",
    "ntt_inv",
    "mul",
    "keyswitch_mac",
    "key_switch",
    "base_conv",
    "rescale_tail",
];

fn bench_size(log_n: usize, limbs: usize) -> SizeRow {
    let n = 1usize << log_n;
    let primes = generate_ntt_primes(59, 2 * limbs, n);
    let src: Vec<Modulus> = primes[..limbs].iter().map(|&p| Modulus::new(p)).collect();
    let dst: Vec<Modulus> = primes[limbs..].iter().map(|&p| Modulus::new(p)).collect();
    let tables: Vec<NttTable> = src.iter().map(|&m| NttTable::new(n, m)).collect();
    let coeffs = n * limbs;
    let mut kernels = Vec::new();

    // NTT forward / inverse: limbs independent transforms. Repeated
    // application without inverting is fine for timing — values stay
    // reduced, and both paths see the same evolving operand stream.
    let (s, v) = time_pair(
        || limb_data(1, n, &src),
        |d| {
            for (t, limb) in tables.iter().zip(d.iter_mut()) {
                t.forward_inplace(limb);
            }
        },
    );
    kernels.push(result(s, v, coeffs));
    let (s, v) = time_pair(
        || limb_data(2, n, &src),
        |d| {
            for (t, limb) in tables.iter().zip(d.iter_mut()) {
                t.inverse_inplace(limb);
            }
        },
    );
    kernels.push(result(s, v, coeffs));

    // Elementwise Barrett multiply (hmult core).
    let (s, v) = time_pair(
        || (limb_data(3, n, &src), limb_data(4, n, &src)),
        |(a, b)| {
            for ((m, al), bl) in src.iter().zip(a.iter_mut()).zip(b.iter()) {
                fides_math::simd::mul_assign(m, al, bl);
            }
        },
    );
    kernels.push(result(s, v, coeffs));

    // Key-switch inner product: acc += digit_d · key_d over DNUM digits.
    let (s, v) = time_pair(
        || {
            let digits: Vec<Vec<Vec<u64>>> = (0..DNUM)
                .map(|d| limb_data(5 + d as u64, n, &src))
                .collect();
            let keys: Vec<Vec<Vec<u64>>> = (0..DNUM)
                .map(|d| limb_data(50 + d as u64, n, &src))
                .collect();
            (limb_data(9, n, &src), digits, keys)
        },
        |(acc, digits, keys)| {
            for d in 0..DNUM {
                for ((m, accl), (dl, kl)) in src
                    .iter()
                    .zip(acc.iter_mut())
                    .zip(digits[d].iter().zip(keys[d].iter()))
                {
                    fides_math::simd::mul_add_assign(m, accl, dl, kl);
                }
            }
        },
    );
    kernels.push(result(s, v, coeffs));

    // Composite key switch: the backend's actual hot path per digit is
    // "NTT the raised digit, then accumulate digit · key" — time that
    // shape whole. This is the gated kernel; the bare accumulate above
    // stays reported so the table shows where the time goes.
    let (s, v) = time_pair(
        || {
            let digits: Vec<Vec<Vec<u64>>> = (0..DNUM)
                .map(|d| limb_data(70 + d as u64, n, &src))
                .collect();
            let keys: Vec<Vec<Vec<u64>>> = (0..DNUM)
                .map(|d| limb_data(80 + d as u64, n, &src))
                .collect();
            (limb_data(10, n, &src), digits, keys)
        },
        |(acc, digits, keys)| {
            for d in 0..DNUM {
                for (t, dl) in tables.iter().zip(digits[d].iter_mut()) {
                    t.forward_inplace(dl);
                }
                for ((m, accl), (dl, kl)) in src
                    .iter()
                    .zip(acc.iter_mut())
                    .zip(digits[d].iter().zip(keys[d].iter()))
                {
                    fides_math::simd::mul_add_assign(m, accl, dl, kl);
                }
            }
        },
    );
    kernels.push(result(s, v, coeffs));

    // RNS base conversion src → dst (the ModUp/ModDown core).
    let conv = BaseConverter::new(&src, &dst);
    let (s, v) = time_pair(
        || (limb_data(11, n, &src), vec![vec![0u64; n]; limbs]),
        |(input, out)| {
            let refs: Vec<&[u64]> = input.iter().map(|v| v.as_slice()).collect();
            conv.convert(&refs, out);
        },
    );
    kernels.push(result(s, v, coeffs));

    // Rescale tail: x = q_last⁻¹ · (x − t) per remaining limb.
    let inv: Vec<ShoupPrecomp> = src
        .iter()
        .map(|m| ShoupPrecomp::new(m.value() / 3, m))
        .collect();
    let (s, v) = time_pair(
        || (limb_data(13, n, &src), limb_data(14, n, &src)),
        |(x, t)| {
            for ((m, w), (xl, tl)) in src.iter().zip(inv.iter()).zip(x.iter_mut().zip(t.iter())) {
                fides_math::simd::sub_shoup_mul_assign(m, w, xl, tl);
            }
        },
    );
    kernels.push(result(s, v, coeffs));

    SizeRow {
        log_n,
        limbs,
        kernels,
    }
}

/// Deterministic simulated-device view of the same kernel shapes: one NTT
/// pass (both phases), one elementwise multiply, one base conversion per
/// limb set. Hard-gated in CI — same code, same cost model, same numbers.
fn sim_size(log_n: usize, limbs: usize) -> (u64, f64) {
    let n = 1u64 << log_n;
    let bytes = n * 8;
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let t0 = gpu.sync();
    for l in 0..limbs as u64 {
        let poly = BufferId(100 + l);
        let tmp = BufferId(200 + l);
        for kind in [KernelKind::NttPhase1, KernelKind::NttPhase2] {
            gpu.launch(
                0,
                KernelDesc::new(kind)
                    .read(poly, bytes)
                    .write(poly, bytes)
                    .ops(n * log_n as u64 / 2),
                || {},
            );
        }
        gpu.launch(
            0,
            KernelDesc::new(KernelKind::Elementwise)
                .read(poly, bytes)
                .read(tmp, bytes)
                .write(poly, bytes)
                .ops(n),
            || {},
        );
    }
    let mut base = KernelDesc::new(KernelKind::BaseConv)
        .write(BufferId(300), bytes)
        .ops(n * limbs as u64);
    for l in 0..limbs as u64 {
        base = base.read(BufferId(100 + l), bytes);
    }
    gpu.launch(0, base, || {});
    let sim_us = gpu.sync() - t0;
    (gpu.stats().kernel_launches, sim_us)
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut count) = (0.0f64, 0usize);
    for x in xs {
        log_sum += x.ln();
        count += 1;
    }
    (log_sum / count as f64).exp()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());
    let simd_built = cfg!(feature = "simd");
    println!(
        "kernel lane: simd feature {} (scalar-vs-SIMD wall clock, best of {REPS})",
        if simd_built {
            "ON"
        } else {
            "OFF — both columns run the scalar path"
        }
    );

    let mut rows = Vec::new();
    for &log_n in &LOG_NS {
        for &limbs in &LIMB_COUNTS {
            println!("  timing logN={log_n} limbs={limbs}...");
            rows.push(bench_size(log_n, limbs));
        }
    }
    let sims: Vec<(usize, usize, u64, f64)> = LOG_NS
        .iter()
        .flat_map(|&log_n| {
            LIMB_COUNTS.iter().map(move |&limbs| {
                let (launches, sim_us) = sim_size(log_n, limbs);
                (log_n, limbs, launches, sim_us)
            })
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            KERNELS.iter().zip(r.kernels.iter()).map(|(name, k)| {
                vec![
                    format!("2^{}", r.log_n),
                    r.limbs.to_string(),
                    (*name).into(),
                    format!("{:.2}", k.scalar_ns_per_coeff),
                    format!("{:.2}", k.simd_ns_per_coeff),
                    format!("{:.2}x", k.speedup),
                ]
            })
        })
        .collect();
    print_table(
        "CPU limb kernels: scalar vs u64x4 slabs (wall ns/coeff)",
        &["N", "limbs", "kernel", "scalar", "simd", "speedup"],
        &table,
    );

    let geo: Vec<f64> = (0..KERNELS.len())
        .map(|k| geomean(rows.iter().map(|r| r.kernels[k].speedup)))
        .collect();
    for (name, g) in KERNELS.iter().zip(geo.iter()) {
        println!("  geomean {name}: {g:.3}x");
    }

    if simd_built {
        // The acceptance gates: the tentpole kernels must actually be
        // faster. Direction only — magnitude is runner-dependent.
        for (name, idx) in [("ntt_fwd", 0usize), ("key_switch", 4)] {
            assert!(
                geo[idx] > 1.0,
                "SIMD {name} must beat scalar wall clock (geomean {:.3}x ≤ 1.0)",
                geo[idx]
            );
        }
    } else {
        println!("  (simd feature off: speedup gates skipped, columns are scalar twice)");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-kernels-v1\",");
    let _ = writeln!(json, "  \"simd_feature\": {simd_built},");
    let _ = writeln!(json, "  \"cpu_kernels\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"wall clock, best of {REPS}; runner-dependent — report-only in the \
         default gate, banded ±30% in the nightly lane\","
    );
    let _ = writeln!(json, "    \"by_size\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"log_n\": {}, \"limbs\": {}",
            r.log_n, r.limbs
        );
        for (name, k) in KERNELS.iter().zip(r.kernels.iter()) {
            let _ = write!(
                json,
                ", \"{name}\": {{\"scalar_wall_ns_per_coeff\": {:.3}, \
                 \"simd_wall_ns_per_coeff\": {:.3}, \"wall_speedup_x\": {:.3}}}",
                k.scalar_ns_per_coeff, k.simd_ns_per_coeff, k.speedup
            );
        }
        let _ = writeln!(json, "}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"geomean_wall_speedup_x\": {{");
    for (i, (name, g)) in KERNELS.iter().zip(geo.iter()).enumerate() {
        let _ = writeln!(
            json,
            "      \"{name}\": {g:.3}{}",
            if i + 1 < KERNELS.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(json, "    \"device\": \"RTX 4090 (simulated)\",");
    let _ = writeln!(json, "    \"by_size\": [");
    for (i, (log_n, limbs, launches, sim_us)) in sims.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"log_n\": {log_n}, \"limbs\": {limbs}, \"kernel_launches\": {launches}, \
             \"sim_us\": {sim_us:.2}}}{}",
            if i + 1 < sims.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    println!("wrote {out_path}");
}
