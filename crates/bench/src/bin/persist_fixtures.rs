//! Regenerates the committed persist-format golden fixtures under
//! `crates/baselines/fixtures/`.
//!
//! The fixtures pin **format version 1 on disk**: CI decodes the committed
//! bytes every run (`crates/serve/tests/persist_fixtures.rs`), so any
//! accidental change to the record layout, the CRC, or a payload codec
//! breaks the lane instead of silently orphaning every existing snapshot.
//! Rerun this generator only on a deliberate `FORMAT_VERSION` bump, and
//! commit the new fixtures alongside it.
//!
//! Everything is seeded, so regeneration under an unchanged format is
//! byte-identical:
//!
//! * `keyset_v1.bin` — params + a full evaluation-key set (relin, two
//!   rotations, conjugation) at logN 8 (small ring: the codec is
//!   degree-independent, the repo stays light).
//! * `plaintext_v1.bin` — params + one preloaded evaluation-domain
//!   plaintext.
//! * `plan_v1.bin` — one planned batch graph as a plan-cache entry.
//! * `snapshot_v1.bin` — a full server snapshot at logN 11: one keyless
//!   tenant (a `MulPlain` circuit needs no switching keys, which keeps
//!   the fixture tens of KB instead of tens of MB), one served tick so
//!   the plan cache holds the tick's plan.
//!
//! ```text
//! cargo run --release --bin persist_fixtures [FIXTURES_DIR]
//! ```

use std::path::Path;

use fides_api::CkksEngine;
use fides_client::persist::{
    kind, KeySetRecord, ParamsRecord, PlaintextRecord, RecordReader, RecordWriter,
};
use fides_client::wire::{OpProgram, ProgramOp, SessionRequest};
use fides_core::sched::{encode_plan_entry, fingerprint, ExecGraph, PlanConfig, Planner};
use fides_core::CkksParameters;
use fides_gpu_sim::{BufferId, GraphEvent, KernelDesc, KernelKind};
use fides_serve::{Server, ServerConfig};

const FIXTURES_DIR: &str = "crates/baselines/fixtures";

fn write_stream(path: &Path, records: &[(u8, Vec<u8>)]) {
    let mut w = RecordWriter::new(Vec::new()).expect("stream header");
    for (tag, payload) in records {
        w.record(*tag, payload).expect("record");
    }
    let bytes = w.finish().expect("stream terminator");
    // Self-check: the bytes we commit must decode cleanly.
    let mut r = RecordReader::new(&bytes[..]).expect("reopen");
    while r.next_record().expect("decode back").is_some() {}
    assert!(r.finished(), "stream must end with an END record");
    std::fs::write(path, &bytes).expect("write fixture");
    println!("wrote {} ({} bytes)", path.display(), bytes.len());
}

fn keyset_fixture(dir: &Path) {
    let engine = CkksEngine::builder()
        .log_n(8)
        .levels(2)
        .scale_bits(40)
        .rotations(&[1, -2])
        .conjugation()
        .seed(901)
        .build()
        .expect("fixture engine");
    let session = engine.session();
    let upload = session.session_request(&[]).expect("keygen upload");
    let keys = KeySetRecord {
        relin: upload.relin,
        rotations: upload.rotations,
        conjugation: upload.conjugation,
    };
    write_stream(
        &dir.join("keyset_v1.bin"),
        &[
            (
                kind::PARAMS,
                ParamsRecord {
                    params_hash: upload.params_hash,
                }
                .encode(),
            ),
            (kind::KEY_SET, keys.encode()),
        ],
    );
}

fn plaintext_fixture(dir: &Path) {
    let engine = CkksEngine::builder()
        .log_n(8)
        .levels(2)
        .scale_bits(40)
        .seed(903)
        .build()
        .expect("fixture engine");
    let session = engine.session();
    let upload = session
        .session_request(&[(&[0.5, -0.25, 0.125][..], 1)])
        .expect("keygen upload");
    write_stream(
        &dir.join("plaintext_v1.bin"),
        &[
            (
                kind::PARAMS,
                ParamsRecord {
                    params_hash: upload.params_hash,
                }
                .encode(),
            ),
            (
                kind::PLAINTEXT,
                PlaintextRecord {
                    plaintext: upload.plaintexts[0].clone(),
                }
                .encode(),
            ),
        ],
    );
}

fn plan_fixture(dir: &Path) {
    let graph = ExecGraph::from_events(vec![
        GraphEvent::Launch {
            stream: 0,
            desc: KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(100), 8192)
                .write(BufferId(101), 8192)
                .ops(4096),
        },
        GraphEvent::Launch {
            stream: 0,
            desc: KernelDesc::new(KernelKind::Elementwise)
                .read(BufferId(101), 8192)
                .write(BufferId(102), 8192)
                .ops(4096),
        },
        GraphEvent::Fence {
            signals: vec![0],
            waiters: vec![1],
        },
        GraphEvent::Launch {
            stream: 1,
            desc: KernelDesc::new(KernelKind::NttPhase1)
                .read(BufferId(102), 16384)
                .write(BufferId(103), 16384)
                .ops(65536),
        },
    ]);
    let cfg = PlanConfig::default();
    let (fp, binding) = fingerprint(&graph, &cfg);
    let plan = Planner::new(cfg).plan(&graph);
    write_stream(
        &dir.join("plan_v1.bin"),
        &[(kind::PLAN, encode_plan_entry(fp, &plan, &binding))],
    );
}

/// The server configuration the snapshot fixture is taken on — the decode
/// test rebuilds it identically, restores the fixture, and expects the
/// first tick of the same workload to hit the restored plan warm.
fn snapshot_server() -> Server {
    let params = CkksParameters::new(11, 2, 40, 3).expect("fixture params");
    Server::new(ServerConfig::new(params)).expect("fixture server")
}

fn snapshot_fixture(dir: &Path) {
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(2)
        .scale_bits(40)
        .seed(902)
        .build()
        .expect("fixture engine");
    let session = engine.session();
    let server = snapshot_server();
    // Keyless upload: `MulPlain`/`AddScalar` need no switching keys, so
    // the committed fixture stays small while still exercising session,
    // placement and plan records.
    let full = session
        .session_request(&[(&[0.5, 0.5, 0.5][..], 2)])
        .expect("keygen upload");
    let upload = SessionRequest {
        params_hash: full.params_hash,
        relin: None,
        rotations: Vec::new(),
        conjugation: None,
        plaintexts: full.plaintexts,
    };
    let sid = server.open_session(upload).expect("open");
    let mut p = OpProgram::new(1);
    let m = p.push(ProgramOp::MulPlain { a: 0, plain: 0 });
    let s = p.push(ProgramOp::AddScalar { a: m, c: 0.25 });
    p.output(s);
    let req = session
        .eval_request(sid, &[&[1.0, 2.0, 4.0]], &p)
        .expect("encrypt");
    let resp = server.eval(req).expect("serve");
    assert!(
        resp.error.is_none(),
        "fixture tick failed: {:?}",
        resp.error
    );
    let mut bytes = Vec::new();
    server.snapshot(&mut bytes).expect("snapshot");
    let path = dir.join("snapshot_v1.bin");
    std::fs::write(&path, &bytes).expect("write fixture");
    println!("wrote {} ({} bytes)", path.display(), bytes.len());

    // Self-check: a same-config server restores it and serves the same
    // circuit warm on its first tick.
    let restored = snapshot_server();
    let n = restored.restore(&bytes[..]).expect("restore");
    assert_eq!(n, 1, "one session in the fixture");
    let req = session
        .eval_request(sid, &[&[1.0, 2.0, 4.0]], &p)
        .expect("encrypt");
    restored.eval(req).expect("post-restore tick");
    let stats = restored.stats();
    assert_eq!(stats.plan_cache_misses, 0, "first tick must replan nothing");
    assert_eq!(stats.warm_plan_hits, 1, "first tick hits the restored plan");
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| FIXTURES_DIR.into());
    let dir = Path::new(&dir);
    std::fs::create_dir_all(dir).expect("fixtures dir");
    keyset_fixture(dir);
    plaintext_fixture(dir);
    plan_fixture(dir);
    snapshot_fixture(dir);
}
