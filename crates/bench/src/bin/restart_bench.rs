//! Warm-restart economics: the PR 9 perf snapshot for the durable-session
//! layer.
//!
//! Measures time-to-first-tick for three ways of bringing up a serving
//! process, over the same tenants and the same pre-encrypted requests:
//!
//! * **cold** — a fresh server; every tenant re-uploads its keys and the
//!   first tick plans every batch graph from scratch;
//! * **restore** — the server restores a snapshot taken *after* the
//!   workload reached steady state: sessions, placements and hot plans
//!   come back together, and the first tick replays a restored plan
//!   without planning anything;
//! * **restore+warmup** — the server restores a snapshot taken *before*
//!   the first tick (sessions only, no plans) and then primes the plan
//!   cache with [`fides_serve::Server::warmup`] shapes; the first live
//!   tick again plans nothing.
//!
//! The planning counters are simulated-deterministic and CI-gated; the
//! `wall_*` columns (snapshot/restore/setup/first-tick milliseconds) are
//! report-only, like every wall metric in this repo. Two invariants are
//! asserted inline while regenerating:
//!
//! 1. both restore modes serve their first tick with **zero** plan-cache
//!    misses (and the cold server must plan at least once);
//! 2. the first-tick frames are **bit-identical** across all three modes
//!    — durability changes startup cost, never math.
//!
//! ```text
//! cargo run --release --bin restart_bench [OUT_PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fides_api::CkksEngine;
use fides_bench::print_table;
use fides_client::wire::{EvalRequest, OpProgram, ProgramOp};
use fides_core::CkksParameters;
use fides_serve::{Server, ServerConfig, WarmupShape};

const OUT_PATH: &str = "BENCH_PR9.json";
const LOG_N: usize = 10;
const LEVELS: usize = 4;
const TENANTS: usize = 4;
const BATCH: usize = 16;
const SLOTS: usize = 3;
/// Steady-state ticks the donor serves before the hot snapshot.
const WARM_TICKS: usize = 3;

struct Tenant {
    session: fides_api::Session,
    program: OpProgram,
}

fn square_program() -> OpProgram {
    let mut p = OpProgram::new(1);
    let sq = p.push(ProgramOp::Square { a: 0 });
    let out = p.push(ProgramOp::AddScalar { a: sq, c: 0.125 });
    p.output(out);
    p
}

fn tenants() -> Vec<Tenant> {
    (0..TENANTS)
        .map(|t| {
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .seed(9900 + t as u64)
                .build()
                .expect("tenant engine");
            Tenant {
                session: engine.session(),
                program: square_program(),
            }
        })
        .collect()
}

fn server() -> Server {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3).expect("bench params");
    Server::new(ServerConfig::new(params).batch_size(BATCH)).expect("server")
}

fn open_all(server: &Server, tenants: &[Tenant]) -> Vec<u64> {
    tenants
        .iter()
        .map(|t| {
            server
                .open_session(t.session.session_request(&[]).expect("session request"))
                .expect("open session")
        })
        .collect()
}

/// One request per tenant, pre-encrypted once so every mode serves the
/// identical ciphertext bytes (session ids are rewritten per server).
fn requests(tenants: &[Tenant]) -> Vec<EvalRequest> {
    tenants
        .iter()
        .enumerate()
        .map(|(t, tenant)| {
            let x = 0.1 + 0.01 * t as f64;
            tenant
                .session
                .eval_request(0, &[&[x, -x, x * 0.5]], &tenant.program)
                .expect("encrypt")
        })
        .collect()
}

/// One batched tick of the whole mix; returns the output frames.
fn serve_tick(server: &Server, reqs: &[EvalRequest], sids: &[u64]) -> Vec<Vec<u8>> {
    let tickets: Vec<_> = reqs
        .iter()
        .zip(sids)
        .map(|(req, sid)| {
            let mut req = req.clone();
            req.session_id = *sid;
            server.submit(req).expect("submit")
        })
        .collect();
    assert_eq!(server.run_tick(), reqs.len(), "the tick drains the batch");
    tickets
        .iter()
        .map(|t| {
            let resp = t.try_take().expect("served");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.to_bytes()
        })
        .collect()
}

struct ModeRow {
    mode: &'static str,
    plan_misses: u64,
    plan_hits: u64,
    warm_plan_hits: u64,
    planned_launches: u64,
    restored_sessions: u64,
    wall_setup_ms: f64,
    wall_first_tick_ms: f64,
    /// Tick-engine phase timers (wall µs, cumulative incl. any warmup).
    wall_plan_us: u64,
    wall_replay_us: u64,
    wall_flush_us: u64,
    frames: Vec<Vec<u8>>,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());
    let tenants = tenants();
    let reqs = requests(&tenants);

    // The donor process: sessions opened, a pre-tick snapshot taken, then
    // steady state reached and the hot snapshot taken.
    let donor = server();
    let donor_sids = open_all(&donor, &tenants);
    let mut image_sessions_only = Vec::new();
    let wall = Instant::now();
    donor
        .snapshot(&mut image_sessions_only)
        .expect("pre-tick snapshot");
    let wall_snapshot_cold_ms = wall.elapsed().as_secs_f64() * 1e3;
    for _ in 0..WARM_TICKS {
        serve_tick(&donor, &reqs, &donor_sids);
    }
    let mut image_hot = Vec::new();
    let wall = Instant::now();
    donor.snapshot(&mut image_hot).expect("hot snapshot");
    let wall_snapshot_hot_ms = wall.elapsed().as_secs_f64() * 1e3;

    // Mode 1: cold start — keys re-uploaded, first tick plans.
    let cold = {
        let wall = Instant::now();
        let server = server();
        let sids = open_all(&server, &tenants);
        let wall_setup_ms = wall.elapsed().as_secs_f64() * 1e3;
        let wall = Instant::now();
        let frames = serve_tick(&server, &reqs, &sids);
        let wall_first_tick_ms = wall.elapsed().as_secs_f64() * 1e3;
        let s = server.stats();
        ModeRow {
            mode: "cold",
            plan_misses: s.plan_cache_misses,
            plan_hits: s.plan_cache_hits,
            warm_plan_hits: s.warm_plan_hits,
            planned_launches: s.planned_launches,
            restored_sessions: s.restored_sessions,
            wall_setup_ms,
            wall_first_tick_ms,
            wall_plan_us: s.plan_us,
            wall_replay_us: s.replay_us,
            wall_flush_us: s.flush_us,
            frames,
        }
    };

    // Mode 2: restore the hot snapshot — plans come back warm.
    let restore = {
        let wall = Instant::now();
        let server = server();
        let n = server.restore(&image_hot[..]).expect("restore hot");
        assert_eq!(n, TENANTS as u64);
        let wall_setup_ms = wall.elapsed().as_secs_f64() * 1e3;
        let wall = Instant::now();
        let frames = serve_tick(&server, &reqs, &donor_sids);
        let wall_first_tick_ms = wall.elapsed().as_secs_f64() * 1e3;
        let s = server.stats();
        ModeRow {
            mode: "restore",
            plan_misses: s.plan_cache_misses,
            plan_hits: s.plan_cache_hits,
            warm_plan_hits: s.warm_plan_hits,
            planned_launches: s.planned_launches,
            restored_sessions: s.restored_sessions,
            wall_setup_ms,
            wall_first_tick_ms,
            wall_plan_us: s.plan_us,
            wall_replay_us: s.replay_us,
            wall_flush_us: s.flush_us,
            frames,
        }
    };

    // Mode 3: restore the sessions-only snapshot, then warm up declared
    // shapes before the first live tick.
    let restore_warmup = {
        let wall = Instant::now();
        let server = server();
        let n = server.restore(&image_sessions_only[..]).expect("restore");
        assert_eq!(n, TENANTS as u64);
        let shape = WarmupShape {
            requests: tenants
                .iter()
                .enumerate()
                .map(|(t, tenant)| (donor_sids[t], tenant.program.clone(), SLOTS))
                .collect(),
        };
        let planned = server.warmup(&[shape]).expect("warmup");
        assert!(planned >= 1, "warmup must build the batch plan");
        let wall_setup_ms = wall.elapsed().as_secs_f64() * 1e3;
        let misses_after_warmup = server.stats().plan_cache_misses;
        let wall = Instant::now();
        let frames = serve_tick(&server, &reqs, &donor_sids);
        let wall_first_tick_ms = wall.elapsed().as_secs_f64() * 1e3;
        let s = server.stats();
        ModeRow {
            mode: "restore+warmup",
            // First-tick planning only: the warmup's own planning is
            // setup-phase work, subtracted here.
            plan_misses: s.plan_cache_misses - misses_after_warmup,
            plan_hits: s.plan_cache_hits,
            warm_plan_hits: s.warm_plan_hits,
            planned_launches: s.planned_launches,
            restored_sessions: s.restored_sessions,
            wall_setup_ms,
            wall_first_tick_ms,
            wall_plan_us: s.plan_us,
            wall_replay_us: s.replay_us,
            wall_flush_us: s.flush_us,
            frames,
        }
    };

    let rows = [cold, restore, restore_warmup];

    // Invariant 1: warm restarts plan nothing on the first live tick; a
    // cold start must plan.
    assert!(rows[0].plan_misses >= 1, "cold first tick must plan");
    assert_eq!(rows[1].plan_misses, 0, "restore first tick must not plan");
    assert_eq!(rows[2].plan_misses, 0, "warmed first tick must not plan");
    assert!(rows[1].warm_plan_hits >= 1, "restore hits restored plans");
    assert!(rows[2].warm_plan_hits >= 1, "warmup hits primed plans");

    // Invariant 2: durability never changes math — first-tick frames are
    // bit-identical across all three modes.
    assert_eq!(rows[0].frames, rows[1].frames, "cold vs restore frames");
    assert_eq!(rows[0].frames, rows[2].frames, "cold vs warmed frames");

    print_table(
        "time-to-first-tick by startup mode",
        &[
            "mode",
            "plan misses",
            "plan hits",
            "warm hits",
            "launches",
            "restored",
            "setup ms",
            "first tick ms",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.plan_misses.to_string(),
                    r.plan_hits.to_string(),
                    r.warm_plan_hits.to_string(),
                    r.planned_launches.to_string(),
                    r.restored_sessions.to_string(),
                    format!("{:.2}", r.wall_setup_ms),
                    format!("{:.2}", r.wall_first_tick_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nsnapshot sizes: sessions-only {} bytes, hot {} bytes; \
         first-tick frames bit-identical across modes",
        image_sessions_only.len(),
        image_hot.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 9,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-restart-v1\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(
        json,
        "    \"device\": \"RTX 4090 (simulated, functional)\","
    );
    let _ = writeln!(
        json,
        "    \"params\": \"[logN, L, dnum] = [{LOG_N}, {LEVELS}, 3], batch {BATCH}, \
         {TENANTS} tenants, {WARM_TICKS} warm ticks before the hot snapshot\","
    );
    let _ = writeln!(
        json,
        "    \"snapshot_bytes_sessions_only\": {},",
        image_sessions_only.len()
    );
    let _ = writeln!(json, "    \"snapshot_bytes_hot\": {},", image_hot.len());
    let _ = writeln!(
        json,
        "    \"wall_snapshot_sessions_only_ms\": {wall_snapshot_cold_ms:.3},"
    );
    let _ = writeln!(
        json,
        "    \"wall_snapshot_hot_ms\": {wall_snapshot_hot_ms:.3},"
    );
    let _ = writeln!(json, "    \"modes\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"mode\": \"{}\", \"first_tick_plan_misses\": {}, \
             \"first_tick_plan_hits\": {}, \"warm_plan_hits\": {}, \
             \"planned_launches\": {}, \"restored_sessions\": {}, \
             \"wall_setup_ms\": {:.3}, \"wall_first_tick_ms\": {:.3}, \
             \"wall_plan_us\": {}, \"wall_replay_us\": {}, \
             \"wall_flush_us\": {}}}{comma}",
            r.mode,
            r.plan_misses,
            r.plan_hits,
            r.warm_plan_hits,
            r.planned_launches,
            r.restored_sessions,
            r.wall_setup_ms,
            r.wall_first_tick_ms,
            r.wall_plan_us,
            r.wall_replay_us,
            r.wall_flush_us,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"bit_identical_across_modes\": true");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR9.json");
    println!("wrote {out_path}");
}
