//! Multi-tenant serving throughput: the PR 4 perf snapshot.
//!
//! Drives the `fides-serve` session server with the `serve_lr` scoring
//! workload — 4 tenants × 4 requests = 16 requests per configuration — and
//! measures, for batch sizes 1 / 4 / 16 with graph fusion on and off:
//!
//! * **sim launches** and **simulated time** (deterministic: the gate
//!   metrics `bench_diff` enforces);
//! * cross-tenant fusion counts and stream occupancy;
//! * wall-clock requests/sec (report-only — runners vary).
//!
//! Emits `BENCH_PR4.json` and asserts the serving layer's two invariants
//! inline: batch-16 output frames are **bit-identical** to serial frames,
//! and batch-16 **strictly reduces** total sim launches vs. 16 serial
//! requests.
//!
//! ```text
//! cargo run --release --bin throughput [OUT_PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fides_api::CkksEngine;
use fides_bench::print_table;
use fides_client::wire::EvalRequest;
use fides_core::{CkksParameters, FusionConfig};
use fides_serve::{Server, ServerConfig};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};

const OUT_PATH: &str = "BENCH_PR4.json";
const LOG_N: usize = 11;
const LEVELS: usize = 6;
const DIM: usize = 32;
const TENANTS: usize = 4;
const REQS_PER_TENANT: usize = 4;
const NUM_STREAMS: usize = 8;

struct Row {
    batch: usize,
    fusion: bool,
    requests: usize,
    sim_us: f64,
    launches: u64,
    recorded: u64,
    fused: u64,
    occupancy_pct: f64,
    peak_device_bytes: u64,
    allocations: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    wall_req_per_sec: f64,
    frames: Vec<Vec<u8>>,
}

fn tenants() -> Vec<(ServeLrModel, fides_api::Session)> {
    (0..TENANTS)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(900 + t as u64)
                .build()
                .expect("tenant engine");
            let session = engine.session();
            (model, session)
        })
        .collect()
}

fn run_config(batch: usize, fusion: bool) -> Row {
    let fusion_cfg = FusionConfig {
        elementwise: fusion,
        ..FusionConfig::default()
    };
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3)
        .expect("bench params")
        .with_num_streams(NUM_STREAMS)
        .with_fusion(fusion_cfg);
    let server = Server::new(ServerConfig::new(params).batch_size(batch)).expect("server");

    let tenants = tenants();
    let mut reqs: Vec<(usize, EvalRequest)> = Vec::new();
    for (t, (model, session)) in tenants.iter().enumerate() {
        let plains = model.session_plains(session.engine().max_level());
        let refs: Vec<(&[f64], usize)> = plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        let sid = server
            .open_session(session.session_request(&refs).expect("session request"))
            .expect("open session");
        let program = model.scoring_program(0);
        for r in 0..REQS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            reqs.push((
                t,
                session
                    .eval_request(sid, &[&features], &program)
                    .expect("encrypt request"),
            ));
        }
    }

    // Serving starts from a clean stats window (session setup and key
    // loading excluded) — launch counts AND stream occupancy then
    // describe the serving phase alone.
    let sync_before = server.sync_us().unwrap();
    server.reset_sim_stats();

    let wall = Instant::now();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|(_, req)| server.submit(req.clone()).unwrap())
        .collect();
    while server.run_tick() > 0 {}
    let wall_s = wall.elapsed().as_secs_f64();

    let sim_after = server.sim_stats().expect("gpu-sim substrate");
    let sim_us = server.sync_us().unwrap() - sync_before;
    let stats = server.stats();

    let frames: Vec<Vec<u8>> = tickets
        .iter()
        .map(|ticket| {
            let resp = ticket.try_take().expect("tick served every request");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.outputs[0].to_bytes()
        })
        .collect();

    Row {
        batch,
        fusion,
        requests: reqs.len(),
        sim_us,
        launches: sim_after.kernel_launches,
        recorded: stats.recorded_kernels,
        fused: stats.fused_kernels,
        occupancy_pct: sim_after.stream_occupancy() * 100.0,
        peak_device_bytes: sim_after.peak_device_bytes,
        allocations: sim_after.allocations,
        plan_cache_hits: stats.plan_cache_hits,
        plan_cache_misses: stats.plan_cache_misses,
        wall_req_per_sec: reqs.len() as f64 / wall_s,
        frames,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());

    let mut rows = Vec::new();
    for fusion in [true, false] {
        for batch in [1usize, 4, 16] {
            rows.push(run_config(batch, fusion));
        }
    }

    // Invariant 1: every configuration produces bit-identical frames
    // (batching and fusion change the schedule, never the results).
    let reference = &rows[0].frames;
    for row in &rows[1..] {
        assert_eq!(
            &row.frames, reference,
            "batch {} fusion {} drifted from the serial reference",
            row.batch, row.fusion
        );
    }

    // Invariant 2: batch-16 with fusion strictly reduces sim launches vs.
    // 16 serial requests (cross-tenant chains fuse at request boundaries).
    let serial = rows.iter().find(|r| r.batch == 1 && r.fusion).unwrap();
    let batched = rows.iter().find(|r| r.batch == 16 && r.fusion).unwrap();
    assert!(
        batched.launches < serial.launches,
        "batch-16 must strictly reduce launches: {} vs {}",
        batched.launches,
        serial.launches
    );
    let reduction_pct =
        100.0 * (serial.launches - batched.launches) as f64 / serial.launches as f64;

    print_table(
        "serving throughput (16 serve_lr requests, 4 tenants)",
        &[
            "batch",
            "fusion",
            "sim ms",
            "launches",
            "recorded",
            "fused",
            "occup %",
            "req/s (wall)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batch.to_string(),
                    r.fusion.to_string(),
                    format!("{:.2}", r.sim_us / 1e3),
                    r.launches.to_string(),
                    r.recorded.to_string(),
                    r.fused.to_string(),
                    format!("{:.1}", r.occupancy_pct),
                    format!("{:.1}", r.wall_req_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nbatch-16 vs serial: {} → {} launches (−{reduction_pct:.1}%), bit-identical frames",
        serial.launches, batched.launches
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-throughput-v1\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(
        json,
        "    \"device\": \"RTX 4090 (simulated, functional)\","
    );
    let _ = writeln!(
        json,
        "    \"params\": \"[logN, L, dnum] = [{LOG_N}, {LEVELS}, 3], serve_lr dim {DIM}, \
         {TENANTS} tenants x {REQS_PER_TENANT} requests, {NUM_STREAMS} streams\","
    );
    let _ = writeln!(json, "    \"by_batch\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"batch\": {}, \"fusion\": {}, \"requests\": {}, \"sim_us\": {:.2}, \
             \"kernel_launches\": {}, \"recorded_kernels\": {}, \"fused_kernels\": {}, \
             \"stream_occupancy_pct\": {:.2}, \"peak_device_bytes\": {}, \"allocations\": {}, \
             \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
             \"wall_req_per_sec\": {:.2}}}{comma}",
            r.batch,
            r.fusion,
            r.requests,
            r.sim_us,
            r.launches,
            r.recorded,
            r.fused,
            r.occupancy_pct,
            r.peak_device_bytes,
            r.allocations,
            r.plan_cache_hits,
            r.plan_cache_misses,
            r.wall_req_per_sec,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"batch16_vs_serial\": {{");
    let _ = writeln!(
        json,
        "      \"serial_kernel_launches\": {},",
        serial.launches
    );
    let _ = writeln!(
        json,
        "      \"batched_kernel_launches\": {},",
        batched.launches
    );
    let _ = writeln!(json, "      \"launch_reduction_pct\": {reduction_pct:.2},");
    let _ = writeln!(json, "      \"bit_identical\": true");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR4.json");
    println!("wrote {out_path}");
}
