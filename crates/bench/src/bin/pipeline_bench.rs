//! Pipelined tick engine: the PR 10 perf snapshot for parallel per-shard
//! planning, plan-ahead double buffering, and the off-lock response
//! flush.
//!
//! Three lanes, each with its invariant asserted inline while the
//! snapshot regenerates:
//!
//! * **parallel planning** — a multi-device server takes one cold batch
//!   tick spanning ≥ 2 device shards; every occupied shard's planning
//!   pass is individually timed. The sequential-equivalent cost is the
//!   *sum* of the per-shard times, the parallel critical path is their
//!   *max* — the bench asserts `max < sum` strictly, an arithmetic fact
//!   about the fan-out that holds even on a 1-core runner where the
//!   rayon pool degrades to serial execution.
//! * **plan-ahead** — the same pre-encrypted request stream is drained
//!   by a serial-tick server and a plan-ahead server; tick counts and
//!   response frames must match byte for byte, and the pipelined run
//!   must report at least one genuinely overlapped tick.
//! * **snapshot between epochs** — a plan-ahead server is snapshotted
//!   right after a tick that staged its successor; a restored server
//!   serves the whole stream with **zero** plan-cache misses (both the
//!   executed and the staged tick's plans travel in the snapshot) and
//!   bit-identical frames.
//!
//! Simulated metrics (`*_sim_us`, `kernel_launches`) are deterministic
//! and CI-gated; `wall_*` phase timers are report-only, banded only by
//! the nightly lane.
//!
//! ```text
//! cargo run --release --bin pipeline_bench [OUT_PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use fides_api::CkksEngine;
use fides_bench::print_table;
use fides_client::wire::{EvalRequest, OpProgram, ProgramOp};
use fides_core::CkksParameters;
use fides_serve::{PipelineConfig, ServeStats, Server, ServerConfig};

const OUT_PATH: &str = "BENCH_PR10.json";
const LOG_N: usize = 10;
const LEVELS: usize = 4;

/// Parallel-planning lane: device shards and tenants for the cold tick.
const SHARD_DEVICES: usize = 4;
const SHARD_TENANTS: usize = 12;

/// Plan-ahead lane: tenants × requests drained at this batch size.
const PIPE_TENANTS: usize = 3;
const PIPE_REQS: usize = 4;
const PIPE_BATCH: usize = 4;

/// Snapshot lane: two tenants, two requests each, batch 2 — the first
/// tick executes half the stream and stages the other half.
const SNAP_TENANTS: usize = 2;
const SNAP_REQS: usize = 2;
const SNAP_BATCH: usize = 2;

struct Tenant {
    session: fides_api::Session,
    reqs: Vec<EvalRequest>,
}

/// A multiplication chain deep enough that every shard's planning pass
/// (fusion scan + liveness pooling over the recorded kernels) takes
/// measurable wall time even on a fast runner.
fn program() -> OpProgram {
    let mut p = OpProgram::new(1);
    let sq = p.push(ProgramOp::Square { a: 0 });
    let sh = p.push(ProgramOp::AddScalar { a: sq, c: 0.25 });
    let m = p.push(ProgramOp::Mul { a: sh, b: 0 });
    let out = p.push(ProgramOp::AddScalar { a: m, c: -0.125 });
    p.output(out);
    p
}

/// Pre-encrypts `per_tenant` requests for `n` tenants (session id 0,
/// rewritten per server), deterministically seeded so every server in a
/// lane serves identical ciphertext bytes.
fn tenants(n: usize, per_tenant: usize, seed_base: u64) -> Vec<Tenant> {
    let program = program();
    (0..n)
        .map(|t| {
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .seed(seed_base + t as u64)
                .build()
                .expect("tenant engine");
            let session = engine.session();
            let reqs = (0..per_tenant)
                .map(|r| {
                    let x = 0.08 + 0.003 * (t * 17 + r) as f64;
                    session
                        .eval_request(0, &[&[x, -x, 0.5 * x]], &program)
                        .expect("encrypt")
                })
                .collect();
            Tenant { session, reqs }
        })
        .collect()
}

fn open_all(server: &Server, tenants: &[Tenant]) -> Vec<u64> {
    tenants
        .iter()
        .map(|t| {
            server
                .open_session(t.session.session_request(&[]).expect("session request"))
                .expect("open session")
        })
        .collect()
}

struct PlanRow {
    shards: usize,
    plan_misses: u64,
    kernel_launches: u64,
    first_tick_sim_us: f64,
    wall_plan_seq_us: u64,
    wall_plan_critical_us: u64,
}

/// One cold batch tick across ≥ 2 device shards; per-shard planning
/// times prove the fan-out strictly shortens the critical path.
fn run_parallel_plan() -> PlanRow {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3)
        .expect("bench params")
        .with_num_devices(SHARD_DEVICES);
    let server = Server::new(
        ServerConfig::new(params)
            .batch_size(SHARD_TENANTS)
            .pipeline(PipelineConfig::default().plan_ahead(false)),
    )
    .expect("server");
    let mix = tenants(SHARD_TENANTS, 1, 10_100);
    let sids = open_all(&server, &mix);
    let tickets: Vec<_> = mix
        .iter()
        .zip(&sids)
        .map(|(t, sid)| {
            let mut req = t.reqs[0].clone();
            req.session_id = *sid;
            server.submit(req).expect("submit")
        })
        .collect();

    let sim0 = server.sync_us().expect("gpu-sim substrate");
    assert_eq!(
        server.run_tick(),
        SHARD_TENANTS,
        "the cold tick drains every tenant"
    );
    let first_tick_sim_us = server.sync_us().expect("gpu-sim substrate") - sim0;
    for t in &tickets {
        let resp = t.try_take().expect("served in the cold tick");
        assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
    }

    let s = server.stats();
    // Occupied shards = devices the consistent-hash placement actually
    // routed tenants to this tick (deterministic: same session ids, same
    // ring, same split on every runner).
    let occupied: Vec<usize> = (0..SHARD_DEVICES)
        .filter(|&d| s.per_device_requests.get(d).copied().unwrap_or(0) > 0)
        .collect();
    assert!(
        occupied.len() >= 2,
        "the lane needs >= 2 device shards to demonstrate the fan-out \
         (got {})",
        occupied.len()
    );
    assert_eq!(
        s.plan_cache_misses,
        occupied.len() as u64,
        "every occupied shard plans exactly once on a cold cache"
    );
    let per: Vec<u64> = occupied.iter().map(|&d| s.per_device_plan_us[d]).collect();
    assert!(
        per.iter().all(|&us| us > 0),
        "every shard's planning pass must take measurable time: {per:?}"
    );
    let seq: u64 = per.iter().sum();
    let crit = *per.iter().max().expect("non-empty");
    assert!(
        crit < seq,
        "parallel critical path ({crit} us) must be strictly below the \
         sequential sum ({seq} us)"
    );

    PlanRow {
        shards: occupied.len(),
        plan_misses: s.plan_cache_misses,
        kernel_launches: s.planned_launches,
        first_tick_sim_us,
        wall_plan_seq_us: seq,
        wall_plan_critical_us: crit,
    }
}

struct EngineRun {
    ticks: usize,
    frames: Vec<Vec<u8>>,
    stats: ServeStats,
    wall_ms: f64,
}

/// Submits every request up front, then drains run_tick by run_tick —
/// the shape that keeps a plan-ahead server's double buffer loaded on
/// every call.
fn drain(plan_ahead: bool, mix: &[Tenant]) -> EngineRun {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3).expect("bench params");
    let server = Server::new(
        ServerConfig::new(params)
            .batch_size(PIPE_BATCH)
            .pipeline(PipelineConfig::default().plan_ahead(plan_ahead)),
    )
    .expect("server");
    let sids = open_all(&server, mix);
    let wall = Instant::now();
    let tickets: Vec<_> = mix
        .iter()
        .zip(&sids)
        .flat_map(|(t, sid)| {
            t.reqs.iter().map(|req| {
                let mut req = req.clone();
                req.session_id = *sid;
                server.submit(req).expect("submit")
            })
        })
        .collect();
    let mut served = 0;
    let mut ticks = 0;
    while served < tickets.len() {
        ticks += 1;
        assert!(ticks < 256, "tick engine stopped making progress");
        served += server.run_tick();
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let frames = tickets
        .iter()
        .map(|t| {
            let resp = t.try_take().expect("ticket filled after the drain");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.to_bytes()
        })
        .collect();
    EngineRun {
        ticks,
        frames,
        stats: server.stats(),
        wall_ms,
    }
}

struct SnapRow {
    snapshot_bytes: usize,
    restore_plan_misses: u64,
    warm_plan_hits: u64,
}

/// Snapshot a plan-ahead server between epochs (one tick executed, the
/// next staged) and prove the restored server replans nothing.
fn run_snapshot_between_epochs() -> SnapRow {
    let mix = tenants(SNAP_TENANTS, SNAP_REQS, 10_300);
    let config = || {
        ServerConfig::new(CkksParameters::new(LOG_N, LEVELS, 40, 3).expect("bench params"))
            .batch_size(SNAP_BATCH)
            .pipeline(PipelineConfig::default().plan_ahead(true))
    };

    // Serial reference frames for the full stream.
    let reference = Server::new(
        ServerConfig::new(CkksParameters::new(LOG_N, LEVELS, 40, 3).expect("bench params"))
            .batch_size(SNAP_BATCH)
            .pipeline(PipelineConfig::default().plan_ahead(false)),
    )
    .expect("reference server");
    let ref_sids = open_all(&reference, &mix);
    let expected: Vec<Vec<u8>> = mix
        .iter()
        .zip(&ref_sids)
        .flat_map(|(t, sid)| {
            t.reqs.iter().map(|req| {
                let mut req = req.clone();
                req.session_id = *sid;
                reference.eval(req).expect("reference eval").to_bytes()
            })
        })
        .collect();

    // The victim: first tick executes SNAP_BATCH requests and stages the
    // rest; the snapshot lands between the two epochs.
    let victim = Server::new(config()).expect("victim server");
    let sids = open_all(&victim, &mix);
    let submit_all = |server: &Server| -> Vec<fides_serve::Ticket> {
        mix.iter()
            .zip(&sids)
            .flat_map(|(t, sid)| {
                t.reqs.iter().map(|req| {
                    let mut req = req.clone();
                    req.session_id = *sid;
                    server.submit(req).expect("submit")
                })
            })
            .collect()
    };
    let _in_flight = submit_all(&victim);
    assert_eq!(victim.run_tick(), SNAP_BATCH, "first tick serves one batch");
    assert!(
        victim.stats().overlapped_ticks >= 1,
        "the first tick must have staged its successor"
    );
    let mut image = Vec::new();
    victim
        .snapshot(&mut image)
        .expect("snapshot between epochs");
    drop(victim);

    // The restored server serves the whole stream warm.
    let restored = Server::new(config()).expect("restored server");
    let n = restored.restore(&image[..]).expect("restore");
    assert_eq!(n, SNAP_TENANTS as u64, "every session restores");
    let tickets = submit_all(&restored);
    let mut served = 0;
    while served < tickets.len() {
        served += restored.run_tick();
    }
    let frames: Vec<Vec<u8>> = tickets
        .iter()
        .map(|t| {
            let resp = t.try_take().expect("served after restore");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.to_bytes()
        })
        .collect();
    assert_eq!(
        frames, expected,
        "restored frames must match the serial reference bit for bit"
    );
    let s = restored.stats();
    assert_eq!(
        s.plan_cache_misses, 0,
        "both the executed and the staged tick's plans travel in the snapshot"
    );
    assert!(s.warm_plan_hits >= 1, "restored plans serve the warm ticks");

    SnapRow {
        snapshot_bytes: image.len(),
        restore_plan_misses: s.plan_cache_misses,
        warm_plan_hits: s.warm_plan_hits,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());

    let plan = run_parallel_plan();

    let mix = tenants(PIPE_TENANTS, PIPE_REQS, 10_200);
    let serial = drain(false, &mix);
    let pipelined = drain(true, &mix);
    assert_eq!(
        pipelined.frames, serial.frames,
        "plan-ahead changed response bytes"
    );
    assert_eq!(
        pipelined.ticks, serial.ticks,
        "plan-ahead moved completions across ticks"
    );
    assert!(
        pipelined.stats.overlapped_ticks >= 1,
        "a multi-tick drain must engage the double buffer"
    );
    assert_eq!(
        serial.stats.overlapped_ticks, 0,
        "serial ticks never overlap"
    );

    let snap = run_snapshot_between_epochs();

    print_table(
        "parallel per-shard planning (one cold tick)",
        &[
            "shards",
            "plan misses",
            "launches",
            "tick sim us",
            "seq plan us",
            "critical us",
            "speedup",
        ],
        &[vec![
            plan.shards.to_string(),
            plan.plan_misses.to_string(),
            plan.kernel_launches.to_string(),
            format!("{:.0}", plan.first_tick_sim_us),
            plan.wall_plan_seq_us.to_string(),
            plan.wall_plan_critical_us.to_string(),
            format!(
                "{:.2}x",
                plan.wall_plan_seq_us as f64 / plan.wall_plan_critical_us as f64
            ),
        ]],
    );
    print_table(
        "plan-ahead vs serial ticks (same pre-encrypted stream)",
        &[
            "engine",
            "ticks",
            "overlapped",
            "plan us",
            "replay us",
            "flush us",
            "wall ms",
        ],
        &[&serial, &pipelined]
            .iter()
            .zip(["serial", "plan-ahead"])
            .map(|(r, name)| {
                vec![
                    name.to_string(),
                    r.ticks.to_string(),
                    r.stats.overlapped_ticks.to_string(),
                    r.stats.plan_us.to_string(),
                    r.stats.replay_us.to_string(),
                    r.stats.flush_us.to_string(),
                    format!("{:.2}", r.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nframes bit-identical serial vs plan-ahead; snapshot between epochs: \
         {} bytes, restored server replans nothing ({} warm hits)",
        snap.snapshot_bytes, snap.warm_plan_hits
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-pipeline-v1\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(
        json,
        "    \"device\": \"RTX 4090 (simulated, functional)\","
    );
    let _ = writeln!(
        json,
        "    \"params\": \"[logN, L, dnum] = [{LOG_N}, {LEVELS}, 3]; planning lane \
         {SHARD_DEVICES} devices x {SHARD_TENANTS} tenants; plan-ahead lane \
         {PIPE_TENANTS} tenants x {PIPE_REQS} reqs at batch {PIPE_BATCH}\","
    );
    let _ = writeln!(json, "    \"parallel_planning\": {{");
    let _ = writeln!(json, "      \"shards\": {},", plan.shards);
    let _ = writeln!(json, "      \"plan_cache_misses\": {},", plan.plan_misses);
    let _ = writeln!(json, "      \"kernel_launches\": {},", plan.kernel_launches);
    let _ = writeln!(
        json,
        "      \"first_tick_sim_us\": {:.2},",
        plan.first_tick_sim_us
    );
    let _ = writeln!(
        json,
        "      \"wall_plan_seq_us\": {},",
        plan.wall_plan_seq_us
    );
    let _ = writeln!(
        json,
        "      \"wall_plan_critical_us\": {},",
        plan.wall_plan_critical_us
    );
    let _ = writeln!(
        json,
        "      \"wall_plan_speedup_x\": {:.3}",
        plan.wall_plan_seq_us as f64 / plan.wall_plan_critical_us as f64
    );
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"plan_ahead\": {{");
    let _ = writeln!(json, "      \"ticks\": {},", pipelined.ticks);
    let _ = writeln!(json, "      \"served\": {},", pipelined.frames.len());
    let _ = writeln!(
        json,
        "      \"wall_overlapped_ticks\": {},",
        pipelined.stats.overlapped_ticks
    );
    let _ = writeln!(
        json,
        "      \"wall_serial_ms\": {:.3}, \"wall_pipelined_ms\": {:.3},",
        serial.wall_ms, pipelined.wall_ms
    );
    let _ = writeln!(
        json,
        "      \"wall_plan_us\": {}, \"wall_replay_us\": {}, \"wall_flush_us\": {},",
        pipelined.stats.plan_us, pipelined.stats.replay_us, pipelined.stats.flush_us
    );
    let _ = writeln!(json, "      \"frames_bit_identical\": true");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"snapshot_between_epochs\": {{");
    let _ = writeln!(json, "      \"snapshot_bytes\": {},", snap.snapshot_bytes);
    let _ = writeln!(
        json,
        "      \"restore_plan_misses\": {},",
        snap.restore_plan_misses
    );
    let _ = writeln!(json, "      \"warm_plan_hits\": {},", snap.warm_plan_hits);
    let _ = writeln!(json, "      \"frames_bit_identical\": true");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR10.json");
    println!("wrote {out_path}");
}
