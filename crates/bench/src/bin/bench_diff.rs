//! The CI perf-regression gate.
//!
//! Compares a freshly generated bench JSON against the committed baseline
//! and **fails (exit 1)** when a deterministic simulated metric — kernel
//! launches or simulated time — regresses by more than the threshold
//! (default 10%). Wall-clock metrics are report-only: runners vary, the
//! simulator doesn't.
//!
//! ```text
//! bench_diff <committed.json> <fresh.json> [--threshold 0.10] [--label NAME] [--gate-wall]
//! ```
//!
//! `--gate-wall` is for the nightly lane, which runs on a pinned runner
//! class: wall metrics become **banded** — out of `±threshold` in either
//! direction fails — while simulated metrics keep their one-sided gate.
//!
//! Output is a GitHub-flavoured markdown table; CI appends it to
//! `$GITHUB_STEP_SUMMARY` so every PR shows the comparison inline.

use std::process::ExitCode;

use fides_bench::diff::DiffReport;
use fides_bench::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <committed.json> <fresh.json> [--threshold 0.10] [--label NAME] [--gate-wall]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut threshold = 0.10f64;
    let mut label: Option<String> = None;
    let mut gate_wall = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate-wall" => gate_wall = true,
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => threshold = v,
                _ => usage(),
            },
            "--label" => match it.next() {
                Some(v) => label = Some(v.clone()),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => positional.push(arg.clone()),
        }
    }
    let [committed_path, fresh_path] = positional.as_slice() else {
        usage();
    };
    let label = label.unwrap_or_else(|| {
        std::path::Path::new(committed_path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| committed_path.clone())
    });

    let (committed, fresh) = match (load(committed_path), load(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (c, f) => {
            for err in [c.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_diff: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let report = DiffReport::compare_with(&committed, &fresh, threshold, gate_wall);
    print!("{}", report.to_markdown(&label));

    let regressions = report.regressions();
    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_diff: {} gated metric(s) regressed beyond {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for r in &regressions {
            eprintln!(
                "  {}: {:.2} -> {:.2} ({:+.1}%)",
                r.path,
                r.committed.unwrap_or(f64::NAN),
                r.fresh.unwrap_or(f64::NAN),
                r.delta.unwrap_or(f64::NAN) * 100.0
            );
        }
        ExitCode::FAILURE
    }
}
