//! Multi-device distributed serving snapshot: the PR 6 perf record
//! (`BENCH_PR6.json`).
//!
//! Runs the batch-16 serve workload (8 tenants × 2 `serve_lr` requests,
//! 8 streams, `2^15` ring, cost-only) on 1, 2 and 4 simulated devices.
//! Tenants shard across device workers via the serve layer's consistent-
//! hash router; each shard plans and replays its own merged graph on its
//! own device, so the fleet makespan — `max` over shards and the
//! interconnect — is what throughput divides by.
//!
//! Acceptance gates asserted inline:
//!
//! * aggregate req/s-per-sim-time is **strictly higher** at N = 2 and
//!   N = 4 than at N = 1;
//! * response frames are **byte-identical** across device counts *and*
//!   across tenant placements (a permuted session-open order re-homes
//!   every tenant) — checked functionally at `2^11`.
//!
//! The JSON leaves `sim_us` and `peak_device_bytes` are the CI-gated
//! metrics (`bench_diff` classifies by name): gating the simulated window
//! gates aggregate req/s-per-sim-time, since the request count is fixed.
//!
//! ```text
//! cargo run --release --bin dist_bench [OUT_PATH]
//! ```

use std::fmt::Write as _;

use fides_api::CkksEngine;
use fides_bench::print_table;
use fides_client::wire::EvalRequest;
use fides_core::CkksParameters;
use fides_gpu_sim::{DeviceSpec, ExecMode};
use fides_serve::{Server, ServerConfig};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};

const OUT_PATH: &str = "BENCH_PR6.json";
/// Cost-only paper-ish scale for the throughput runs (same reasoning as
/// `sched_bench`: above the latency floor, below functional-run cost).
const LOG_N: usize = 15;
/// Functional scale for the cross-placement frame-identity check.
const LOG_N_FUNC: usize = 11;
const LEVELS: usize = 6;
const DIM: usize = 32;
const TENANTS: usize = 8;
const REQS_PER_TENANT: usize = 2;
const NUM_STREAMS: usize = 8;
const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

struct Row {
    devices: usize,
    sim_us: f64,
    agg_req_per_sim_sec: f64,
    launches: u64,
    per_device_requests: Vec<u64>,
    per_device_peak_bytes: Vec<u64>,
    frames: Vec<Vec<u8>>,
}

fn serve_params(log_n: usize, devices: usize) -> CkksParameters {
    CkksParameters::new(log_n, LEVELS, 40, 3)
        .expect("bench params")
        .with_num_streams(NUM_STREAMS)
        .with_num_devices(devices)
}

fn tenants(log_n: usize) -> Vec<(ServeLrModel, fides_api::Session)> {
    (0..TENANTS)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(log_n)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(900 + t as u64)
                .build()
                .expect("tenant engine");
            (model, engine.session())
        })
        .collect()
}

/// Opens the tenants' sessions in `open_order` (session ids — and
/// therefore router placements — follow that order), then builds the
/// requests in **canonical tenant order** so frames compare positionally
/// across placements.
fn requests(
    server: &Server,
    tenants: &[(ServeLrModel, fides_api::Session)],
    open_order: &[usize],
) -> Vec<EvalRequest> {
    let mut sids = vec![0u64; tenants.len()];
    for &t in open_order {
        let (model, session) = &tenants[t];
        let plains = model.session_plains(session.engine().max_level());
        let refs: Vec<(&[f64], usize)> = plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        sids[t] = server
            .open_session(session.session_request(&refs).expect("session request"))
            .expect("open session");
    }
    let mut reqs = Vec::new();
    for (t, (model, session)) in tenants.iter().enumerate() {
        let program = model.scoring_program(0);
        for r in 0..REQS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            reqs.push(
                session
                    .eval_request(sids[t], &[&features], &program)
                    .expect("encrypt request"),
            );
        }
    }
    reqs
}

/// Serves the full request mix on `devices` shards and measures the
/// simulated serving window (fleet makespan).
fn run_serve(log_n: usize, devices: usize, mode: ExecMode, open_order: &[usize]) -> Row {
    let server = Server::new(
        ServerConfig::new(serve_params(log_n, devices))
            .backend(fides_serve::ServeBackend::GpuSim {
                device: DeviceSpec::rtx_4090(),
                mode,
            })
            .batch_size(TENANTS * REQS_PER_TENANT),
    )
    .expect("server");
    assert_eq!(server.num_devices(), devices);
    let tenants = tenants(log_n);
    let reqs = requests(&server, &tenants, open_order);

    let sync_before = server.sync_us().unwrap();
    server.reset_sim_stats();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|req| server.submit(req.clone()).unwrap())
        .collect();
    while server.run_tick() > 0 {}
    let sim_us = server.sync_us().unwrap() - sync_before;
    let stats = server.stats();

    let frames: Vec<Vec<u8>> = tickets
        .iter()
        .map(|t| {
            let resp = t.try_take().expect("tick served every request");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.outputs[0].to_bytes()
        })
        .collect();

    let launches: u64 = (0..devices)
        .map(|d| server.sim_stats_device(d).expect("shard").kernel_launches)
        .sum();
    let per_device_peak_bytes: Vec<u64> = (0..devices)
        .map(|d| server.sim_stats_device(d).expect("shard").peak_device_bytes)
        .collect();

    Row {
        devices,
        sim_us,
        agg_req_per_sim_sec: reqs.len() as f64 / (sim_us * 1e-6),
        launches,
        per_device_requests: stats.per_device_requests.clone(),
        per_device_peak_bytes,
        frames,
    }
}

fn identity_order() -> Vec<usize> {
    (0..TENANTS).collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());

    println!("batch-16 serve workload on {DEVICE_COUNTS:?} devices (cost-only, logN {LOG_N})...");
    let rows: Vec<Row> = DEVICE_COUNTS
        .iter()
        .map(|&n| run_serve(LOG_N, n, ExecMode::CostOnly, &identity_order()))
        .collect();
    for r in &rows {
        println!(
            "N={}: sim {:.1} us, {:.1} req/s-sim, launches {}, shard reqs {:?}, shard peaks {:?} MB",
            r.devices,
            r.sim_us,
            r.agg_req_per_sim_sec,
            r.launches,
            r.per_device_requests,
            r.per_device_peak_bytes
                .iter()
                .map(|b| b >> 20)
                .collect::<Vec<_>>()
        );
    }

    // Scaling gate: sharding must strictly raise aggregate simulated
    // throughput over the single device.
    let base = &rows[0];
    for r in &rows[1..] {
        assert!(
            r.agg_req_per_sim_sec > base.agg_req_per_sim_sec,
            "N={} must beat N=1 on req/s-per-sim-time: {:.1} vs {:.1}",
            r.devices,
            r.agg_req_per_sim_sec,
            base.agg_req_per_sim_sec
        );
    }
    // Structural identity at bench scale: the device count changes the
    // schedule only, never the response frames.
    for r in &rows[1..] {
        assert_eq!(
            r.frames, base.frames,
            "N={} changed response frames",
            r.devices
        );
    }

    println!(
        "functional frame-identity across device counts and placements (logN {LOG_N_FUNC})..."
    );
    let f1 = run_serve(LOG_N_FUNC, 1, ExecMode::Functional, &identity_order());
    for &n in &DEVICE_COUNTS[1..] {
        let fwd = run_serve(LOG_N_FUNC, n, ExecMode::Functional, &identity_order());
        assert_eq!(fwd.frames, f1.frames, "N={n} changed functional frames");
        // Reverse the session-open order: every tenant gets a different
        // session id, hashes to a different home shard, and the responses
        // must not move a bit.
        let permuted: Vec<usize> = (0..TENANTS).rev().collect();
        let perm = run_serve(LOG_N_FUNC, n, ExecMode::Functional, &permuted);
        assert_eq!(
            perm.frames, f1.frames,
            "N={n} permuted placement changed functional frames"
        );
        println!(
            "  N={n}: identity + permuted placement frames match (shard reqs fwd {:?}, perm {:?})",
            fwd.per_device_requests, perm.per_device_requests
        );
    }

    print_table(
        "distributed serving: batch-16 serve workload by device count",
        &[
            "devices",
            "sim ms",
            "req/s (sim)",
            "launches",
            "shard reqs",
            "peak MB/device",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.devices.to_string(),
                    format!("{:.2}", r.sim_us / 1e3),
                    format!("{:.1}", r.agg_req_per_sim_sec),
                    r.launches.to_string(),
                    format!("{:?}", r.per_device_requests),
                    format!(
                        "{:?}",
                        r.per_device_peak_bytes
                            .iter()
                            .map(|b| b >> 20)
                            .collect::<Vec<_>>()
                    ),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-dist-serve\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(
        json,
        "    \"device\": \"RTX 4090 (simulated), pcie-gen4-x16 interconnect\","
    );
    let _ = writeln!(
        json,
        "    \"serve_params\": \"[logN, L, dnum] = [{LOG_N}, {LEVELS}, 3], serve_lr dim {DIM}, \
         {TENANTS} tenants x {REQS_PER_TENANT} requests, {NUM_STREAMS} streams, batch 16, \
         cost-only (functional identity checked at logN {LOG_N_FUNC})\","
    );
    let _ = writeln!(json, "    \"by_devices\": [");
    for (i, r) in rows.iter().enumerate() {
        let peaks = r
            .per_device_peak_bytes
            .iter()
            .map(|b| format!("{{\"peak_device_bytes\": {b}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "      {{\"devices\": {}, \"sim_us\": {:.2}, \"agg_req_per_sim_sec\": {:.2}, \
             \"kernel_launches\": {}, \"per_device\": [{}]}}{}",
            r.devices,
            r.sim_us,
            r.agg_req_per_sim_sec,
            r.launches,
            peaks,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"scaling_vs_single\": {{");
    let _ = writeln!(
        json,
        "      \"speedup_n2\": {:.3},",
        rows[1].agg_req_per_sim_sec / rows[0].agg_req_per_sim_sec
    );
    let _ = writeln!(
        json,
        "      \"speedup_n4\": {:.3},",
        rows[2].agg_req_per_sim_sec / rows[0].agg_req_per_sim_sec
    );
    let _ = writeln!(json, "      \"frames_identical_across_topologies\": true,");
    let _ = writeln!(json, "      \"frames_identical_across_placements\": true");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR6.json");
    println!("wrote {out_path}");
}
