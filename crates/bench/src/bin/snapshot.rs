//! Machine-readable performance snapshot: seeds the repo's perf trajectory.
//!
//! Emits `BENCH_PR2.json` with per-primitive and end-to-end LR-iteration
//! timings on **both** backends:
//!
//! * gpu-sim (cost-only, paper parameters `[16, 29, 59, 4]`): simulated µs
//!   and planned kernel launches, fusion on vs off — the stream-graph
//!   planner's effect in one file;
//! * cpu-reference (functional, `[11, 9, 2^40, 2]`): wall-clock µs at
//!   worker counts 1 and 8 — the limb-parallel worker pool's scaling.
//!
//! CI uploads the file as an artifact, so every PR leaves a comparable
//! perf record.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fides_api::{BackendChoice, CkksEngine};
use fides_baselines::synth_keys_with_rotations;
use fides_bench::sim_time_us;
use fides_core::{adapter, CkksContext, CkksParameters, FusionConfig};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_workloads::{EngineLrTrainer, LrConfig, LrTrainer};

const OUT_PATH: &str = "BENCH_PR2.json";

/// One timed gpu-sim entry.
struct SimEntry {
    op: &'static str,
    fusion: bool,
    sim_us: f64,
    kernel_launches: u64,
}

fn gpu_sim_primitives(fusion: bool) -> Vec<SimEntry> {
    let fusion_cfg = if fusion {
        FusionConfig::default()
    } else {
        FusionConfig::none()
    };
    let params = CkksParameters::paper_default()
        .with_limb_batch(12)
        .with_fusion(fusion_cfg);
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params, Arc::clone(&gpu));
    let keys = synth_keys_with_rotations(&ctx, &[1]);
    let ct = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), ctx.n() / 2);

    let mut out = Vec::new();
    let mut timed = |op: &'static str, run: &dyn Fn()| {
        run(); // warm the L2 model
        gpu.sync();
        gpu.reset_stats();
        let us = sim_time_us(&gpu, run);
        out.push(SimEntry {
            op,
            fusion,
            sim_us: us,
            kernel_launches: gpu.stats().kernel_launches,
        });
    };
    timed("hadd", &|| {
        let _ = ct.add(&ct).unwrap();
    });
    timed("hmult_rescale", &|| {
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
    });
    timed("hrotate", &|| {
        let _ = ct.rotate(1, &keys).unwrap();
    });
    out
}

fn gpu_sim_lr_iteration(fusion: bool) -> (f64, f64, u64) {
    let fusion_cfg = if fusion {
        FusionConfig::default()
    } else {
        FusionConfig::none()
    };
    let params = CkksParameters::paper_lr()
        .with_limb_batch(12)
        .with_fusion(fusion_cfg);
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params, Arc::clone(&gpu));
    let client = fides_client::ClientContext::new(ctx.raw_params().clone());
    let cfg = LrConfig::paper();
    let trainer = LrTrainer::new(&ctx, &client, cfg);
    let keys = synth_keys_with_rotations(&ctx, &trainer.required_rotations());
    let top = ctx.max_level();
    let w = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let x = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let y = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let _ = trainer.iteration(&w, &x, &y, &keys).unwrap();
    gpu.sync();
    gpu.reset_stats();
    let us = sim_time_us(&gpu, || {
        let _ = trainer.iteration(&w, &x, &y, &keys).unwrap();
    });
    let stats = gpu.stats();
    (
        us,
        stats.stream_occupancy() * 100.0,
        stats.peak_device_bytes,
    )
}

/// Wall-clock microseconds of `f`, best of three runs.
fn wall_us(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// CPU-backend wall-clock entries at one worker count.
struct CpuEntry {
    workers: usize,
    hadd_us: f64,
    hmult_rescale_us: f64,
    hrotate_us: f64,
    lr_iteration_us: f64,
}

fn cpu_backend_times(workers: usize) -> CpuEntry {
    let cfg = LrConfig {
        batch: 8,
        features: 8,
        learning_rate: 1.0,
    };
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(9)
        .scale_bits(40)
        .dnum(2)
        .backend(BackendChoice::Cpu)
        .workers(workers)
        .rotations(&cfg.required_rotations())
        .seed(11)
        .build()
        .expect("snapshot parameters are valid");
    let a = engine.encrypt(&[0.5; 64]).unwrap();
    let b = engine.encrypt(&[0.25; 64]).unwrap();
    let hadd_us = wall_us(|| {
        let _ = a.try_add(&b).unwrap();
    });
    let hmult_rescale_us = wall_us(|| {
        let _ = a.try_mul(&b).unwrap(); // engine policy rescales
    });
    let hrotate_us = wall_us(|| {
        let _ = a.rotate(1).unwrap();
    });
    let trainer = EngineLrTrainer::new(&engine, cfg).unwrap();
    let rows: Vec<Vec<f64>> = (0..cfg.batch)
        .map(|i| {
            (0..cfg.features)
                .map(|j| ((i + j) % 5) as f64 * 0.1)
                .collect()
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = trainer.encrypt_features(&row_refs).unwrap();
    let y = trainer.encrypt_labels(&vec![1.0; cfg.batch]).unwrap();
    let w = trainer.encrypt_weights(&vec![0.0; cfg.features]).unwrap();
    let lr_iteration_us = wall_us(|| {
        let _ = trainer.iteration(&w, &x, &y).unwrap();
    });
    CpuEntry {
        workers,
        hadd_us,
        hmult_rescale_us,
        hrotate_us,
        lr_iteration_us,
    }
}

fn main() {
    println!("collecting gpu-sim primitive timings (fusion on/off)...");
    let mut sim_entries = gpu_sim_primitives(true);
    sim_entries.extend(gpu_sim_primitives(false));
    println!("collecting gpu-sim LR iteration timings...");
    let (lr_fused, lr_fused_occ, lr_fused_peak) = gpu_sim_lr_iteration(true);
    let (lr_unfused, lr_unfused_occ, lr_unfused_peak) = gpu_sim_lr_iteration(false);
    println!("collecting cpu-reference wall-clock timings (workers 1, 8)...");
    let cpu_entries = [cpu_backend_times(1), cpu_backend_times(8)];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 2,\n");
    json.push_str("  \"schema\": \"fideslib-bench-snapshot-v1\",\n");
    json.push_str("  \"gpu_sim\": {\n");
    json.push_str("    \"device\": \"RTX 4090 (simulated, cost-only)\",\n");
    json.push_str("    \"params\": \"[logN, L, dnum] = [16, 29, 4], limb_batch 12\",\n");
    json.push_str("    \"primitives\": [\n");
    for (i, e) in sim_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"op\": \"{}\", \"fusion\": {}, \"sim_us\": {:.2}, \"kernel_launches\": {}}}{}",
            e.op,
            e.fusion,
            e.sim_us,
            e.kernel_launches,
            if i + 1 < sim_entries.len() { "," } else { "" }
        );
    }
    json.push_str("    ],\n");
    json.push_str("    \"lr_iteration\": [\n");
    let _ = writeln!(
        json,
        "      {{\"fusion\": true, \"sim_us\": {lr_fused:.2}, \
         \"stream_occupancy_pct\": {lr_fused_occ:.2}, \"peak_device_bytes\": {lr_fused_peak}}},"
    );
    let _ = writeln!(
        json,
        "      {{\"fusion\": false, \"sim_us\": {lr_unfused:.2}, \
         \"stream_occupancy_pct\": {lr_unfused_occ:.2}, \"peak_device_bytes\": {lr_unfused_peak}}}"
    );
    json.push_str("    ]\n  },\n");
    json.push_str("  \"cpu_reference\": {\n");
    json.push_str("    \"params\": \"[logN, L, dnum] = [11, 9, 2], functional\",\n");
    let _ = writeln!(
        json,
        "    \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("    \"by_workers\": [\n");
    for (i, e) in cpu_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"workers\": {}, \"hadd_us\": {:.1}, \"hmult_rescale_us\": {:.1}, \
             \"hrotate_us\": {:.1}, \"lr_iteration_us\": {:.1}}}{}",
            e.workers,
            e.hadd_us,
            e.hmult_rescale_us,
            e.hrotate_us,
            e.lr_iteration_us,
            if i + 1 < cpu_entries.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  }\n}\n");

    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());
    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!("\nwrote {out_path}:\n{json}");
}
