//! Fig. 7: HMult at maximum level vs limb-batch size, per GPU platform
//! (`[16, 29, 59, 4]`).
//!
//! The paper's observation: small batches are CPU-launch-bound (many tiny
//! kernels), large batches lose L2 temporal locality; higher-throughput GPUs
//! peak at larger batches.

use std::sync::Arc;

use fides_baselines::synth_keys;
use fides_bench::print_table;
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

fn main() {
    println!("Fig. 7 reproduction — HMult (µs) at ℓ = 29 vs limb batch");
    let batches: Vec<usize> = vec![2, 4, 6, 8, 10, 12];
    let mut rows: Vec<Vec<String>> = batches.iter().map(|b| vec![b.to_string()]).collect();
    let mut headers: Vec<String> = vec!["batch".into()];
    let mut best: Vec<(String, usize, f64)> = Vec::new();

    for spec in DeviceSpec::all_gpus() {
        headers.push(spec.name.clone());
        let mut dev_best = (0usize, f64::INFINITY);
        for (row, &batch) in rows.iter_mut().zip(&batches) {
            let params = CkksParameters::paper_default().with_limb_batch(batch);
            let gpu = GpuSim::new(spec.clone(), ExecMode::CostOnly);
            let ctx = CkksContext::new(params, Arc::clone(&gpu));
            let keys = synth_keys(&ctx);
            let ct = adapter::placeholder_ciphertext(
                &ctx,
                ctx.max_level(),
                ctx.fresh_scale(),
                ctx.n() / 2,
            );
            let run = || {
                let _ = ct.mul(&ct, &keys).unwrap();
            };
            run();
            gpu.sync();
            let t0 = gpu.sync();
            run();
            let dt = gpu.sync() - t0;
            if dt < dev_best.1 {
                dev_best = (batch, dt);
            }
            row.push(format!("{dt:8.1}"));
        }
        best.push((spec.name.clone(), dev_best.0, dev_best.1));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("HMult (µs) vs limb batch", &headers_ref, &rows);
    println!("\nbest batch per platform:");
    for (name, batch, us) in best {
        println!("  {name:12} → batch {batch:2} ({us:8.1} µs)");
    }
    println!("\nPaper shape: optimum shifts right with GPU throughput (4090 peaks at the");
    println!("largest batches; 4060 Ti at small ones).");
}
