//! Table VIII: qualitative comparison of GPU CKKS libraries.
//!
//! Printed from the feature matrix the paper reports, with this
//! reproduction's coverage in the FIDESlib column (every FIDESlib feature is
//! implemented here, including the integration-test methodology).

use fides_bench::print_table;

fn main() {
    let features = [
        (
            "Open Source",
            vec!["✗", "✓", "✓", "✓", "✓", "✗", "✓", "✗", "✓"],
        ),
        (
            "Published",
            vec!["✓", "✗", "✓", "✗", "✓", "✓", "✗", "✓", "✓"],
        ),
        (
            "Bootstrapping",
            vec!["✓", "✓", "✓", "✗", "✗", "✓", "✓", "✓", "✓"],
        ),
        (
            "OpenFHE Inter.",
            vec!["✗", "✗", "✗", "✗", "✗", "✗", "✗", "✗", "✓"],
        ),
        (
            "Benchmarks",
            vec!["✓", "✗", "✓", "✗", "✓", "✗", "✗", "✗", "LR"],
        ),
        (
            "Microbench.",
            vec!["✓", "✓", "✓", "✓", "✓", "✗", "✓", "✗", "✓"],
        ),
        (
            "Unit Tests",
            vec!["✗", "✓", "✗", "✓", "✗", "✗", "✗", "✗", "✓"],
        ),
        (
            "Integration Tests",
            vec!["✗", "✗", "✗", "✗", "✗", "✗", "✗", "✗", "✓"],
        ),
        (
            "Multi-GPU",
            vec!["✗", "✗", "✗", "✓", "✗", "✗", "✓", "✗", "WIP"],
        ),
    ];
    let libs = [
        "HEaaN [17]",
        "HEonGPU [18]",
        "100x [19]",
        "Troy [20]",
        "Phantom [15]",
        "Cheddar [16]",
        "Liberate [23]",
        "TensorFHE [22]",
        "FIDESlib",
    ];
    let mut headers = vec!["feature"];
    headers.extend(libs);
    let rows: Vec<Vec<String>> = features
        .iter()
        .map(|(name, cells)| {
            let mut row = vec![name.to_string()];
            row.extend(cells.iter().map(|c| c.to_string()));
            row
        })
        .collect();
    print_table(
        "Table VIII: qualitative comparison of GPU CKKS libraries",
        &headers,
        &rows,
    );
    println!("\nThis reproduction implements the full FIDESlib column: every server-side");
    println!("primitive incl. bootstrapping, OpenFHE-style client interoperation through");
    println!("the adapter layer, the LR benchmark, per-table microbenchmarks, unit tests");
    println!("in every module, and client⇄server integration tests. The Phantom column's");
    println!("op coverage is enforced by `fides_baselines::PhantomCkks` (ScalarAdd,");
    println!("ScalarMult, HSquare, HoistedRotate and Bootstrap are absent, as published).");
}
