//! Ablation: hoisted rotations (§III-F.6) vs naive per-rotation key
//! switching, as a function of how many rotations share one input.
//!
//! Both variants run through the stream-graph planner: the naive loop plans
//! one graph per rotation, while the hoisted path records the shared
//! decomposition + ModUp and every rotation's inner products into a single
//! graph whose launches interleave across the streams. The table therefore
//! also reports planned kernel launches per variant — hoisting's saving is
//! visible in the schedule itself, not just the clock.

use std::sync::Arc;

use fides_baselines::synth_keys_with_rotations;
use fides_bench::{fmt_us, print_table};
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

fn main() {
    println!("Hoisting ablation — k rotations of one ciphertext, [16, 29, 59, 4], RTX 4090");
    let params = CkksParameters::paper_default().with_limb_batch(12);
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params, Arc::clone(&gpu));
    let all_shifts: Vec<i32> = (1..=16).collect();
    let keys = synth_keys_with_rotations(&ctx, &all_shifts);
    let ct = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), ctx.n() / 2);

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let shifts: Vec<i32> = (1..=k as i32).collect();
        let naive = || {
            for &s in &shifts {
                let _ = ct.rotate(s, &keys).unwrap();
            }
        };
        let hoisted = || {
            let _ = ct.hoisted_rotations(&shifts, &keys).unwrap();
        };
        let measure = |run: &dyn Fn()| {
            run();
            gpu.sync();
            gpu.reset_stats();
            let t0 = gpu.sync();
            run();
            (gpu.sync() - t0, gpu.stats().kernel_launches)
        };
        let (naive_us, naive_launches) = measure(&naive);
        let (hoisted_us, hoisted_launches) = measure(&hoisted);
        rows.push(vec![
            k.to_string(),
            fmt_us(naive_us),
            naive_launches.to_string(),
            fmt_us(hoisted_us),
            hoisted_launches.to_string(),
            format!("{:4.2}x", naive_us / hoisted_us),
        ]);
    }
    print_table(
        "k rotations: naive vs hoisted",
        &["k", "naive", "launches", "hoisted", "launches", "speedup"],
        &rows,
    );
    let sched = ctx.sched_stats();
    println!(
        "\nplanner ledger (cumulative over every run above, warm-ups included):\n  \
         {} graphs, {} kernels recorded, {} fused away, {} launched",
        sched.graphs, sched.recorded_kernels, sched.fused_kernels, sched.planned_launches
    );
    println!("Hoisting shares the decomposition + ModUp across rotations, so the gain");
    println!("grows with k (the BSGS baby steps of bootstrapping's linear transforms).");
}
