//! Machine-readable bootstrap performance snapshot (`BENCH_PR3.json`).
//!
//! The PR 3 counterpart of `snapshot` (BENCH_PR2.json), covering the new
//! workload end to end:
//!
//! * gpu-sim (cost-only, paper parameters `[16, 29, 59, 4]`, 2¹⁴ slots):
//!   **per-phase** simulated times of one bootstrap
//!   (ModRaise / fold / CoeffToSlot / EvalMod / SlotToCoeff) plus planned
//!   kernel-launch counts with fusion on vs off;
//! * cpu-reference (functional, `[11, 20, 2^50, 3]`, 8 slots): bootstrap
//!   wall-clock per phase at worker counts 1 and 8;
//! * lr_boot (functional, CPU): iterations + bootstraps of the
//!   past-the-level-budget LR training demo and its wall time.
//!
//! CI uploads the file as an artifact next to BENCH_PR2.json.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fides_api::{BackendChoice, CkksEngine};
use fides_baselines::synth_keys_with_rotations;
use fides_client::ClientContext;
use fides_core::{
    adapter, boot, BackendCt, BootPhases, BootstrapConfig, Bootstrapper, CkksContext,
    CkksParameters, CpuBackend, EvalBackend, FusionConfig, GpuSimBackend,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_workloads::{BootstrappedLrTrainer, LrConfig};

const OUT_PATH: &str = "BENCH_PR3.json";

/// One cost-only bootstrap at paper scale: per-phase times + launch count.
fn gpu_sim_bootstrap(fusion: bool) -> (BootPhases, u64, u64) {
    let fusion_cfg = if fusion {
        FusionConfig::default()
    } else {
        FusionConfig::none()
    };
    let params = CkksParameters::paper_default()
        .with_limb_batch(12)
        .with_fusion(fusion_cfg);
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params, Arc::clone(&gpu));
    let client = ClientContext::new(ctx.raw_params().clone());
    let slots = 1usize << 14;
    let config = BootstrapConfig::for_slots(slots);
    let shifts = boot::required_rotations(ctx.n(), &config);
    let keys = synth_keys_with_rotations(&ctx, &shifts);
    let backend = GpuSimBackend::new(Arc::clone(&ctx), keys);
    let booter = Bootstrapper::new(&backend, &client, config).expect("chain deep enough");
    let ct = BackendCt::Device(adapter::placeholder_ciphertext(
        &ctx,
        0,
        ctx.standard_scale(0),
        slots,
    ));
    // Warm-up, then a phased (synced) measured run.
    let _ = booter.bootstrap(&backend, &ct).unwrap();
    gpu.sync();
    gpu.reset_stats();
    ctx.reset_sched_stats();
    let (_, phases) = booter.bootstrap_phased(&backend, &ct).unwrap();
    gpu.sync();
    (
        phases,
        gpu.stats().kernel_launches,
        ctx.sched_stats().fused_kernels,
    )
}

/// One functional CPU bootstrap at the given worker count.
fn cpu_bootstrap(workers: usize) -> BootPhases {
    let params = CkksParameters::new(11, 20, 50, 3)
        .unwrap()
        .with_first_mod_bits(55);
    let raw = params.to_raw();
    let client = ClientContext::new(raw.clone());
    let mut kg = fides_client::KeyGenerator::new(&client, 0xbe5c);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let slots = 8usize;
    let config = BootstrapConfig::for_slots(slots);

    let mut backend = CpuBackend::new(raw).with_workers(workers);
    backend.set_relin_key(kg.relinearization_key(&sk));
    backend.set_conj_key(kg.conjugation_key(&sk));
    for shift in boot::required_rotations(client.n(), &config) {
        backend.insert_rotation_key(shift, kg.rotation_key(&sk, shift));
    }
    let booter = Bootstrapper::new(&backend, &client, config).expect("chain deep enough");

    let values: Vec<f64> = (0..slots).map(|i| 0.2 * (i as f64 * 0.5).sin()).collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let pt = client
        .encode_real(&values, backend.standard_scale(0), 0)
        .expect("bench inputs are always encodable");
    let raw_ct = client
        .encrypt(&pt, &pk, &mut rng)
        .expect("bench inputs are always encryptable");
    let ct = backend.load(&raw_ct).unwrap();
    // Warm-up, then best-of-two phased runs.
    let _ = booter.bootstrap(&backend, &ct).unwrap();
    let (_, a) = booter.bootstrap_phased(&backend, &ct).unwrap();
    let (_, b) = booter.bootstrap_phased(&backend, &ct).unwrap();
    if a.total_us < b.total_us {
        a
    } else {
        b
    }
}

/// The lr_boot demo: iterations, bootstraps, wall time.
fn lr_boot_run() -> (usize, usize, f64) {
    let cfg = LrConfig {
        batch: 4,
        features: 4,
        learning_rate: 1.0,
    };
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(26)
        .scale_bits(50)
        .first_mod_bits(55)
        .dnum(3)
        .backend(BackendChoice::Cpu)
        .rotations(&cfg.required_rotations())
        .bootstrap_config(BootstrapConfig {
            slots: cfg.slots(),
            level_budget: (2, 2),
            k_range: 128.0,
            double_angles: 6,
            degree: 40,
        })
        .seed(0x60a1)
        .build()
        .expect("lr_boot parameters are valid");
    let trainer = BootstrappedLrTrainer::new(&engine, cfg).unwrap();
    let xs: Vec<Vec<f64>> = (0..cfg.batch)
        .map(|i| {
            (0..cfg.features)
                .map(|j| 0.3 * (((i + j) % 5) as f64 / 5.0 - 0.4))
                .collect()
        })
        .collect();
    let row_refs: Vec<&[f64]> = xs.iter().map(|r| r.as_slice()).collect();
    let x = trainer.trainer().encrypt_features(&row_refs).unwrap();
    let y = trainer
        .trainer()
        .encrypt_labels(&[1.0, 0.0, 1.0, 0.0])
        .unwrap();
    let w = trainer
        .trainer()
        .encrypt_weights(&vec![0.0; cfg.features])
        .unwrap();
    let t0 = Instant::now();
    let (_, stats) = trainer.train(&w, &x, &y, 6).unwrap();
    let us = t0.elapsed().as_secs_f64() * 1e6;
    (stats.iterations, stats.bootstraps, us)
}

fn phase_json(p: &BootPhases) -> String {
    format!(
        "{{\"mod_raise_us\": {:.2}, \"fold_us\": {:.2}, \"coeff_to_slot_us\": {:.2}, \
         \"eval_mod_us\": {:.2}, \"slot_to_coeff_us\": {:.2}, \"total_us\": {:.2}}}",
        p.mod_raise_us,
        p.fold_us,
        p.coeff_to_slot_us,
        p.eval_mod_us,
        p.slot_to_coeff_us,
        p.total_us
    )
}

fn main() {
    println!("collecting gpu-sim bootstrap phases (fusion on/off)...");
    let (fused_phases, fused_launches, fused_away) = gpu_sim_bootstrap(true);
    let (plain_phases, plain_launches, _) = gpu_sim_bootstrap(false);
    println!("collecting cpu-reference bootstrap phases (workers 1, 8)...");
    let cpu_entries: Vec<(usize, BootPhases)> =
        [1usize, 8].iter().map(|&w| (w, cpu_bootstrap(w))).collect();
    println!("running lr_boot (LR training past the level budget)...");
    let (lr_iters, lr_boots, lr_us) = lr_boot_run();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 3,\n");
    json.push_str("  \"schema\": \"fideslib-bench-bootstrap-v1\",\n");
    json.push_str("  \"gpu_sim\": {\n");
    json.push_str("    \"device\": \"RTX 4090 (simulated, cost-only)\",\n");
    json.push_str(
        "    \"params\": \"[logN, L, dnum] = [16, 29, 4], limb_batch 12, 16384 slots\",\n",
    );
    let _ = writeln!(json, "    \"phases_fused\": {},", phase_json(&fused_phases));
    let _ = writeln!(
        json,
        "    \"phases_unfused\": {},",
        phase_json(&plain_phases)
    );
    let _ = writeln!(json, "    \"kernel_launches_fused\": {fused_launches},");
    let _ = writeln!(json, "    \"kernel_launches_unfused\": {plain_launches},");
    let _ = writeln!(json, "    \"kernels_fused_away\": {fused_away}");
    json.push_str("  },\n");
    json.push_str("  \"cpu_reference\": {\n");
    json.push_str("    \"params\": \"[logN, L, dnum] = [11, 20, 3], functional, 8 slots\",\n");
    let _ = writeln!(
        json,
        "    \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    json.push_str("    \"by_workers\": [\n");
    for (i, (w, p)) in cpu_entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"workers\": {}, \"phases\": {}}}{}",
            w,
            phase_json(p),
            if i + 1 < cpu_entries.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"lr_boot\": {\n");
    json.push_str("    \"params\": \"[logN, L, dnum] = [11, 26, 3], cpu backend, 16 slots\",\n");
    let _ = writeln!(json, "    \"iterations\": {lr_iters},");
    let _ = writeln!(json, "    \"bootstraps\": {lr_boots},");
    let _ = writeln!(json, "    \"wall_us\": {lr_us:.1}\n  }}\n}}");

    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());
    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    println!("\nwrote {out_path}:\n{json}");
}
