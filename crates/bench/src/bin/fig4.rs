//! Fig. 4: (i)NTT time per limb vs limb count, FIDESlib vs Phantom, on the
//! RTX 4090 and RTX 4060 Ti.
//!
//! This microbenchmark drives the kernel model directly with the same cost
//! formulas the server library uses (`N = 2^16`; FIDESlib: hierarchical
//! two-pass kernels over limb batches on separate streams; Phantom: one
//! monolithic Radix-8-profile kernel over all limbs).

use std::sync::Arc;

use fides_baselines::{PHANTOM_ACCESS_EFFICIENCY, PHANTOM_NTT_OP_FACTOR};
use fides_bench::print_table;
use fides_gpu_sim::{
    DeviceSpec, ExecMode, GpuSim, KernelDesc, KernelKind, VectorGpu, BUTTERFLY_OPS,
};

const LOG_N: u32 = 16;
const N: usize = 1 << LOG_N;

fn phase_ops(op_factor: f64) -> u64 {
    let base = (N as u64 / 2) * (LOG_N as u64).div_ceil(2) * BUTTERFLY_OPS;
    (base as f64 * op_factor) as u64
}

/// One full transform over `limbs` limbs; returns (µs per limb, stream
/// occupancy over the measured window).
fn ntt_us_per_limb(
    spec: &DeviceSpec,
    limbs: usize,
    batch: usize,
    access_eff: f64,
    op_factor: f64,
    inverse: bool,
) -> (f64, f64) {
    let gpu = GpuSim::new(spec.clone(), ExecMode::CostOnly);
    let bufs: Vec<VectorGpu<u64>> = (0..limbs).map(|_| VectorGpu::new(&gpu, N)).collect();
    let lb = (N * 8) as u64;
    let run = |gpu: &Arc<GpuSim>| {
        let batches = limbs.div_ceil(batch);
        for k in 0..batches {
            let range = (k * batch)..((k + 1) * batch).min(limbs);
            let stream = k % 16;
            for pass in 0..2u8 {
                let kind = match (inverse, pass) {
                    (false, 0) => KernelKind::NttPhase1,
                    (false, _) => KernelKind::NttPhase2,
                    (true, 0) => KernelKind::InttPhase1,
                    (true, _) => KernelKind::InttPhase2,
                };
                let mut desc = KernelDesc::new(kind)
                    .ops(phase_ops(op_factor) * range.len() as u64)
                    .access_efficiency(access_eff);
                for i in range.clone() {
                    desc = desc.read(bufs[i].buffer(), lb).write(bufs[i].buffer(), lb);
                }
                gpu.launch(stream, desc, || {});
            }
        }
    };
    run(&gpu); // cold pass warms the L2 model (steady-state measurement)
    gpu.sync();
    gpu.reset_stats();
    let t0 = gpu.sync();
    run(&gpu);
    let dt = gpu.sync() - t0;
    (dt / limbs as f64, gpu.stats().stream_occupancy())
}

fn main() {
    println!("Fig. 4 reproduction — (i)NTT time per limb (µs), N = 2^16");
    for spec in [DeviceSpec::rtx_4090(), DeviceSpec::rtx_4060_ti()] {
        let mut rows = Vec::new();
        for &limbs in &[16usize, 32, 64, 128] {
            let (f_ntt, f_occ) = ntt_us_per_limb(&spec, limbs, 8, 1.0, 1.0, false);
            let (f_intt, _) = ntt_us_per_limb(&spec, limbs, 8, 1.0, 1.0, true);
            let (p_ntt, p_occ) = ntt_us_per_limb(
                &spec,
                limbs,
                limbs, // monolithic
                PHANTOM_ACCESS_EFFICIENCY,
                PHANTOM_NTT_OP_FACTOR,
                false,
            );
            let (p_intt, _) = ntt_us_per_limb(
                &spec,
                limbs,
                limbs,
                PHANTOM_ACCESS_EFFICIENCY,
                PHANTOM_NTT_OP_FACTOR,
                true,
            );
            rows.push(vec![
                limbs.to_string(),
                format!("{f_ntt:7.3}"),
                format!("{f_intt:7.3}"),
                format!("{p_ntt:7.3}"),
                format!("{p_intt:7.3}"),
                format!("{:5.2}x", p_ntt / f_ntt),
                format!("{:3.0}% / {:3.0}%", f_occ * 100.0, p_occ * 100.0),
            ]);
        }
        print_table(
            &format!("{}: time per (i)NTT limb (µs)", spec.name),
            &[
                "limbs",
                "FIDESlib NTT",
                "FIDESlib iNTT",
                "Phantom NTT",
                "Phantom iNTT",
                "gap",
                "occupancy F/P",
            ],
            &rows,
        );
    }
    println!("\nPaper shape: FIDESlib stays flat/low as the working set grows; Phantom's");
    println!("per-limb time grows once the working set exceeds L2 (4090 ≈ 0.5–1 µs vs");
    println!("2.5–3 µs at 128 limbs; 4060 Ti up to ~8–12 µs).");
}
