//! Fig. 6: HMult vs processed limbs across the four GPU platforms
//! (`[16, 29, 59, 4]`, best limb batch per platform).
//!
//! Hybrid key switching drops a whole digit each time `⌈(ℓ+1)/α⌉` shrinks,
//! producing the stair-step speedups the paper points out.

use std::sync::Arc;

use fides_baselines::synth_keys;
use fides_bench::print_table;
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

fn best_batch(name: &str) -> usize {
    match name {
        "RTX 4060 Ti" => 4,
        "RTX A4500" => 6,
        "V100" => 8,
        _ => 12,
    }
}

fn main() {
    println!("Fig. 6 reproduction — HMult (µs) vs processed limbs");
    let limb_points: Vec<usize> = vec![5, 8, 10, 15, 16, 20, 24, 25, 30];
    let mut rows: Vec<Vec<String>> = limb_points
        .iter()
        .map(|l| {
            // Digits active at this level (α = 8 for the default set).
            let digits = l.div_ceil(8);
            vec![l.to_string(), digits.to_string()]
        })
        .collect();
    let mut headers: Vec<String> = vec!["limbs".into(), "digits".into()];

    for spec in DeviceSpec::all_gpus() {
        headers.push(spec.name.clone());
        let params = CkksParameters::paper_default().with_limb_batch(best_batch(&spec.name));
        let gpu = GpuSim::new(spec.clone(), ExecMode::CostOnly);
        let ctx = CkksContext::new(params, Arc::clone(&gpu));
        let keys = synth_keys(&ctx);
        for (row, &limbs) in rows.iter_mut().zip(&limb_points) {
            let level = limbs - 1;
            let ct = adapter::placeholder_ciphertext(
                &ctx,
                level,
                ctx.standard_scale(level),
                ctx.n() / 2,
            );
            let run = || {
                let _ = ct.mul(&ct, &keys).unwrap();
            };
            run();
            gpu.sync();
            let t0 = gpu.sync();
            run();
            let dt = gpu.sync() - t0;
            row.push(format!("{dt:8.1}"));
        }
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("HMult (µs)", &headers_ref, &rows);
    println!("\nPaper shape: up to ~3.5 ms at 30 limbs; visible steps each time a");
    println!("key-switching digit activates (8 → 9 limbs, 16 → 17, 24 → 25).");
}
