//! Ablation: kernel fusion, toggled family by family — §III-F.5's in-kernel
//! fusions plus the stream-graph planner's elementwise-chain fusion.
//!
//! Measures HMult + Rescale at `[16, 29, 59, 4]` on the RTX 4090. Every
//! configuration drives the same recorded-graph execution path
//! (`fides_core::sched`): ops record kernel nodes, the planner fuses what
//! the configuration allows, and the plan replays onto the stream timeline —
//! so "kernel launches" below are exactly the launches the plan issued, and
//! "fused away" is the planner's own ledger.

use std::sync::Arc;

use fides_baselines::synth_keys;
use fides_bench::{fmt_us, print_table};
use fides_core::{adapter, CkksContext, CkksParameters, FusionConfig};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

/// One configuration's measurements: simulated time, planned launches,
/// launches fused away by the graph pass.
fn measure(params: &CkksParameters) -> (f64, u64, u64) {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
    let keys = synth_keys(&ctx);
    let ct = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), ctx.n() / 2);
    let run = || {
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
    };
    run();
    gpu.sync();
    gpu.reset_stats();
    ctx.reset_sched_stats();
    let t0 = gpu.sync();
    run();
    let dt = gpu.sync() - t0;
    let sched = ctx.sched_stats();
    (dt, gpu.stats().kernel_launches, sched.fused_kernels)
}

fn main() {
    println!("Fusion ablation — HMult + Rescale, [16, 29, 59, 4], RTX 4090");
    println!("(all rows run the stream-graph planner; rows toggle what it may fuse)");
    let base = CkksParameters::paper_default().with_limb_batch(12);
    let configs: Vec<(&str, FusionConfig)> = vec![
        ("all fusions (FIDESlib)", FusionConfig::default()),
        (
            "no graph elementwise fusion",
            FusionConfig {
                elementwise: false,
                ..FusionConfig::default()
            },
        ),
        (
            "no rescale fusion",
            FusionConfig {
                rescale: false,
                ..FusionConfig::default()
            },
        ),
        (
            "no moddown fusion",
            FusionConfig {
                mod_down: false,
                ..FusionConfig::default()
            },
        ),
        (
            "no keyswitch fusion",
            FusionConfig {
                key_switch: false,
                ..FusionConfig::default()
            },
        ),
        (
            "no dot-product fusion",
            FusionConfig {
                dot_product: false,
                ..FusionConfig::default()
            },
        ),
        ("no fusions at all", FusionConfig::none()),
    ];
    let (base_us, _, _) = measure(&base.clone().with_fusion(FusionConfig::default()));
    let mut rows = Vec::new();
    for (name, fusion) in configs {
        let (us, launches, fused) = measure(&base.clone().with_fusion(fusion));
        rows.push(vec![
            name.to_string(),
            fmt_us(us),
            launches.to_string(),
            fused.to_string(),
            format!("{:+5.1}%", (us / base_us - 1.0) * 100.0),
        ]);
    }
    print_table(
        "HMult + Rescale fusion ablation",
        &[
            "configuration",
            "time",
            "kernel launches",
            "fused away",
            "vs fused",
        ],
        &rows,
    );
}
