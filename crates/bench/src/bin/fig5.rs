//! Fig. 5: PtMult + Rescale vs processed limbs across the four GPU
//! platforms (`[16, 29, 59, 4]`, best limb batch per platform).
//!
//! The paper highlights near-linear scaling with a knee on the RTX 4060 Ti
//! when the working set starts fitting its 32 MB L2 below ~20 limbs.

use std::sync::Arc;

use fides_bench::print_table;
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

/// Best limb batch per platform (from the Fig. 7 sweep).
pub fn best_batch(name: &str) -> usize {
    match name {
        "RTX 4060 Ti" => 4,
        "RTX A4500" => 6,
        "V100" => 8,
        _ => 12,
    }
}

fn main() {
    println!("Fig. 5 reproduction — PtMult + Rescale (µs) vs processed limbs");
    let limb_points: Vec<usize> = vec![5, 10, 15, 20, 25, 30];
    let mut rows: Vec<Vec<String>> = limb_points.iter().map(|l| vec![l.to_string()]).collect();
    let mut headers: Vec<String> = vec!["limbs".into()];

    let mut occupancies: Vec<String> = Vec::new();
    for spec in DeviceSpec::all_gpus() {
        headers.push(spec.name.clone());
        let params = CkksParameters::paper_default().with_limb_batch(best_batch(&spec.name));
        let gpu = GpuSim::new(spec.clone(), ExecMode::CostOnly);
        let ctx = CkksContext::new(params, Arc::clone(&gpu));
        let mut device_occ = 0.0f64;
        for (row, &limbs) in rows.iter_mut().zip(&limb_points) {
            let level = limbs - 1;
            let ct = adapter::placeholder_ciphertext(
                &ctx,
                level,
                ctx.standard_scale(level),
                ctx.n() / 2,
            );
            let pt =
                adapter::placeholder_plaintext(&ctx, level, ctx.standard_scale(level), ctx.n() / 2);
            let run = || {
                let mut prod = ct.mul_plain(&pt).unwrap();
                prod.rescale_in_place().unwrap();
            };
            run();
            gpu.sync();
            gpu.reset_stats();
            let t0 = gpu.sync();
            run();
            let dt = gpu.sync() - t0;
            device_occ = device_occ.max(gpu.stats().stream_occupancy());
            row.push(format!("{dt:8.1}"));
        }
        occupancies.push(format!("{}: {:.0}%", spec.name, device_occ * 100.0));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("PtMult + Rescale (µs)", &headers_ref, &rows);
    println!("\npeak stream occupancy: {}", occupancies.join("  "));
    println!("\nPaper shape: ~linear in limbs; ~100–500 µs range; 4060 Ti knee below");
    println!("~20 limbs as the working set fits its 32 MB L2.");
}
