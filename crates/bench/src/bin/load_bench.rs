//! Latency under load: the PR 8 perf snapshot for the network-front
//! admission and QoS layers.
//!
//! Drives the serve-layer admission queue with two deterministic load
//! generators over the simulated-GPU substrate:
//!
//! * **Open loop** — a fixed offered load per batch tick (0.5× … 2× the
//!   batch capacity), mixing one flooding tenant with three quiet
//!   tenants submitting one request per tick each. Requests the bounded
//!   queue cannot admit are shed (counted, not retried) — exactly the
//!   production overload posture.
//! * **Closed loop** — a fixed concurrency of outstanding requests,
//!   refilled as responses complete: the classic saturation probe.
//!
//! Latency is **simulated time**: the cluster makespan (`sync_us`) at
//! completion minus at submission. It is deterministic, so the p50/p99
//! percentiles are CI-gateable; wall-clock throughput is reported but
//! never gated. Three invariants are asserted inline:
//!
//! 1. p99 sim latency is **monotone non-decreasing in offered load**
//!    (more load can only push percentiles up);
//! 2. under 2× overload, the quiet tenants' p99 with DRR scheduling is
//!    **≤ 0.7×** the FIFO baseline's (the whole point of per-tenant
//!    fair queuing);
//! 3. every delivered frame is **bit-identical** to the same request on
//!    an unloaded serial server — load changes scheduling, never math.
//!
//! ```text
//! cargo run --release --bin load_bench [OUT_PATH]
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use fides_api::CkksEngine;
use fides_bench::print_table;
use fides_client::wire::EvalRequest;
use fides_core::CkksParameters;
use fides_serve::{QosPolicy, ServeStats, Server, ServerConfig, Ticket};

const OUT_PATH: &str = "BENCH_PR8.json";
const LOG_N: usize = 10;
const LEVELS: usize = 4;
const BATCH: usize = 8;
const QUIET_TENANTS: usize = 3;
const ROUNDS: usize = 24;
/// Offered load as percent of batch capacity per tick.
const LOADS_PCT: [usize; 4] = [50, 100, 150, 200];
const CAPACITY: usize = 64;

struct Tenant {
    session: fides_api::Session,
    reqs: Vec<EvalRequest>,
}

fn square_program() -> fides_client::wire::OpProgram {
    let mut p = fides_client::wire::OpProgram::new(1);
    let sq = p.push(fides_client::wire::ProgramOp::Square { a: 0 });
    p.output(sq);
    p
}

/// Pre-encrypts every tenant's request stream once per configuration.
/// Engines are freshly seeded and requests are generated in index order,
/// so request `r` of tenant `t` has identical ciphertext bytes in every
/// configuration (and in the serial reference) regardless of how many
/// requests a given run pre-encrypts — that is what makes cross-run
/// frame comparison meaningful.
fn tenants(flood_n: usize, quiet_n: usize) -> Vec<Tenant> {
    let program = square_program();
    (0..1 + QUIET_TENANTS)
        .map(|t| {
            let engine = CkksEngine::builder()
                .log_n(LOG_N)
                .levels(LEVELS)
                .scale_bits(40)
                .seed(4400 + t as u64)
                .build()
                .expect("tenant engine");
            let session = engine.session();
            let n = if t == 0 { flood_n } else { quiet_n };
            let reqs = (0..n)
                .map(|r| {
                    let x = 0.05 + 0.001 * (t * 131 + r) as f64;
                    // Session id is rewritten per server at open time.
                    session
                        .eval_request(0, &[&[x, -x, x * 0.5]], &program)
                        .expect("encrypt")
                })
                .collect();
            Tenant { session, reqs }
        })
        .collect()
}

fn open_all(server: &Server, tenants: &[Tenant]) -> Vec<u64> {
    tenants
        .iter()
        .map(|t| {
            server
                .open_session(t.session.session_request(&[]).expect("session request"))
                .expect("open session")
        })
        .collect()
}

fn server_with(qos: QosPolicy) -> Server {
    let params = CkksParameters::new(LOG_N, LEVELS, 40, 3).expect("bench params");
    Server::new(
        ServerConfig::new(params)
            .batch_size(BATCH)
            .admission_capacity(CAPACITY)
            .qos(qos),
    )
    .expect("server")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct InFlight {
    tenant: usize,
    req: usize,
    submitted_us: f64,
    ticket: Ticket,
}

struct OpenLoopRow {
    policy: &'static str,
    load_pct: usize,
    offered: usize,
    served: usize,
    shed: usize,
    p50_sim_us: f64,
    p99_sim_us: f64,
    quiet_p50_sim_us: f64,
    quiet_p99_sim_us: f64,
    ticks: usize,
    wall_req_per_sec: f64,
    /// (tenant, request index) → frame bytes, for the identity check.
    frames: HashMap<(usize, usize), Vec<u8>>,
    /// Tick-engine phase timers at the end of the run.
    stats: ServeStats,
}

/// Open-loop generator: each tick, the quiet tenants submit one request
/// apiece and the flooder fills the rest of the offered load; shed
/// requests are dropped. Latency clock is the simulated makespan.
fn run_open_loop(policy: QosPolicy, name: &'static str, load_pct: usize) -> OpenLoopRow {
    let per_tick = (BATCH * load_pct).div_ceil(100);
    let flood_per_tick = per_tick.saturating_sub(QUIET_TENANTS).max(1);
    let tenants = tenants(ROUNDS * flood_per_tick, ROUNDS);
    let server = server_with(policy);
    let sids = open_all(&server, &tenants);
    server.reset_sim_stats();

    let mut inflight: Vec<InFlight> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut quiet_latencies: Vec<f64> = Vec::new();
    let mut frames = HashMap::new();
    let mut offered = 0usize;
    let mut shed = 0usize;
    let mut next_req = vec![0usize; tenants.len()];
    let mut ticks = 0usize;
    let wall = Instant::now();

    let submit = |t: usize,
                  next_req: &mut Vec<usize>,
                  inflight: &mut Vec<InFlight>,
                  offered: &mut usize,
                  shed: &mut usize| {
        let r = next_req[t];
        if r >= tenants[t].reqs.len() {
            return;
        }
        next_req[t] += 1;
        *offered += 1;
        let mut req = tenants[t].reqs[r].clone();
        req.session_id = sids[t];
        let submitted_us = server.sync_us().expect("gpu-sim substrate");
        match server.submit(req) {
            Ok(ticket) => inflight.push(InFlight {
                tenant: t,
                req: r,
                submitted_us,
                ticket,
            }),
            Err(_) => *shed += 1,
        }
    };
    let reap = |server: &Server,
                inflight: &mut Vec<InFlight>,
                latencies: &mut Vec<f64>,
                quiet_latencies: &mut Vec<f64>,
                frames: &mut HashMap<(usize, usize), Vec<u8>>| {
        let now_us = server.sync_us().expect("gpu-sim substrate");
        inflight.retain_mut(|f| match f.ticket.try_take() {
            Some(resp) => {
                assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
                let lat = now_us - f.submitted_us;
                latencies.push(lat);
                if f.tenant > 0 {
                    quiet_latencies.push(lat);
                }
                frames.insert((f.tenant, f.req), resp.to_bytes());
                false
            }
            None => true,
        });
    };

    for _ in 0..ROUNDS {
        for t in 1..=QUIET_TENANTS {
            submit(t, &mut next_req, &mut inflight, &mut offered, &mut shed);
        }
        for _ in 0..flood_per_tick {
            submit(0, &mut next_req, &mut inflight, &mut offered, &mut shed);
        }
        server.run_tick();
        ticks += 1;
        reap(
            &server,
            &mut inflight,
            &mut latencies,
            &mut quiet_latencies,
            &mut frames,
        );
    }
    // Drain the backlog (no new arrivals — the generator stopped).
    while !inflight.is_empty() {
        server.run_tick();
        ticks += 1;
        reap(
            &server,
            &mut inflight,
            &mut latencies,
            &mut quiet_latencies,
            &mut frames,
        );
    }
    let wall_s = wall.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quiet_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let served = latencies.len();
    assert_eq!(served + shed, offered, "no request may vanish untracked");
    OpenLoopRow {
        policy: name,
        load_pct,
        offered,
        served,
        shed,
        p50_sim_us: percentile(&latencies, 0.50),
        p99_sim_us: percentile(&latencies, 0.99),
        quiet_p50_sim_us: percentile(&quiet_latencies, 0.50),
        quiet_p99_sim_us: percentile(&quiet_latencies, 0.99),
        ticks,
        wall_req_per_sec: served as f64 / wall_s,
        frames,
        stats: server.stats(),
    }
}

struct ClosedLoopRow {
    concurrency: usize,
    served: usize,
    p50_sim_us: f64,
    p99_sim_us: f64,
    throughput_req_per_sim_s: f64,
    wall_req_per_sec: f64,
    stats: ServeStats,
}

/// Closed-loop generator: keep `concurrency` requests outstanding
/// (refilling round-robin across tenants as responses land) until
/// `total` complete.
fn run_closed_loop(concurrency: usize, total: usize) -> ClosedLoopRow {
    let tenants = tenants(total, total);
    let server = server_with(QosPolicy::default());
    let sids = open_all(&server, &tenants);
    server.reset_sim_stats();
    let sim_start = server.sync_us().expect("gpu-sim substrate");

    let mut latencies: Vec<f64> = Vec::new();
    let mut inflight: Vec<(f64, Ticket)> = Vec::new();
    let mut next = vec![0usize; tenants.len()];
    let mut issued = 0usize;
    let mut turn = 0usize;
    let wall = Instant::now();
    while latencies.len() < total {
        while inflight.len() < concurrency && issued < total {
            let t = turn % tenants.len();
            turn += 1;
            let r = next[t];
            next[t] += 1;
            let mut req = tenants[t].reqs[r].clone();
            req.session_id = sids[t];
            let submitted = server.sync_us().expect("gpu-sim substrate");
            let ticket = server
                .submit(req)
                .expect("closed loop stays under capacity");
            inflight.push((submitted, ticket));
            issued += 1;
        }
        server.run_tick();
        let now_us = server.sync_us().expect("gpu-sim substrate");
        inflight.retain_mut(|(submitted, ticket)| match ticket.try_take() {
            Some(resp) => {
                assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
                latencies.push(now_us - *submitted);
                false
            }
            None => true,
        });
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let sim_s = (server.sync_us().expect("gpu-sim substrate") - sim_start) / 1e6;

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ClosedLoopRow {
        concurrency,
        served: latencies.len(),
        p50_sim_us: percentile(&latencies, 0.50),
        p99_sim_us: percentile(&latencies, 0.99),
        throughput_req_per_sim_s: latencies.len() as f64 / sim_s,
        wall_req_per_sec: latencies.len() as f64 / wall_s,
        stats: server.stats(),
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());

    // Open loop: DRR and the FIFO baseline across the load sweep.
    let mut open_rows: Vec<OpenLoopRow> = Vec::new();
    for load_pct in LOADS_PCT {
        open_rows.push(run_open_loop(
            QosPolicy::Drr { quantum: 1 },
            "drr",
            load_pct,
        ));
    }
    for load_pct in LOADS_PCT {
        open_rows.push(run_open_loop(QosPolicy::Fifo, "fifo", load_pct));
    }

    // Invariant 1: p99 monotone non-decreasing in offered load, per
    // policy (tiny float jitter tolerated at one part in a thousand).
    for policy in ["drr", "fifo"] {
        let curve: Vec<&OpenLoopRow> = open_rows.iter().filter(|r| r.policy == policy).collect();
        for pair in curve.windows(2) {
            assert!(
                pair[1].p99_sim_us >= pair[0].p99_sim_us * 0.999,
                "{policy}: p99 must not improve as offered load rises \
                 ({}% -> {}%: {:.0} -> {:.0} sim us)",
                pair[0].load_pct,
                pair[1].load_pct,
                pair[0].p99_sim_us,
                pair[1].p99_sim_us
            );
        }
    }

    // Invariant 2: at 2x overload, DRR keeps the quiet tenants' p99 at
    // most 0.7x the FIFO baseline's.
    let drr2 = open_rows
        .iter()
        .find(|r| r.policy == "drr" && r.load_pct == 200)
        .unwrap();
    let fifo2 = open_rows
        .iter()
        .find(|r| r.policy == "fifo" && r.load_pct == 200)
        .unwrap();
    let qos_ratio = drr2.quiet_p99_sim_us / fifo2.quiet_p99_sim_us;
    assert!(
        qos_ratio <= 0.7,
        "DRR must shield quiet tenants under overload: quiet p99 ratio {qos_ratio:.3} > 0.7"
    );

    // Invariant 3: every delivered frame matches the unloaded serial
    // reference bit for bit. Shed requests consume stream indices, so
    // size the reference by the highest index actually served.
    {
        let needed = open_rows
            .iter()
            .flat_map(|row| row.frames.keys().map(|&(_, r)| r + 1))
            .max()
            .unwrap();
        let tenants = tenants(needed, needed);
        let reference = server_with(QosPolicy::default());
        let sids = open_all(&reference, &tenants);
        let mut expected: HashMap<(usize, usize), Vec<u8>> = HashMap::new();
        for row in &open_rows {
            for (&(t, r), frame) in &row.frames {
                let bytes = expected.entry((t, r)).or_insert_with(|| {
                    let mut req = tenants[t].reqs[r].clone();
                    req.session_id = sids[t];
                    reference
                        .eval(req)
                        .expect("reference admits everything")
                        .to_bytes()
                });
                assert_eq!(
                    bytes, frame,
                    "policy {} load {}%: tenant {t} request {r} frame drifted from \
                     the unloaded serial run",
                    row.policy, row.load_pct
                );
            }
        }
    }

    // Closed loop at increasing concurrency.
    let closed_rows: Vec<ClosedLoopRow> = [1usize, 8, 32]
        .iter()
        .map(|&c| run_closed_loop(c, 48))
        .collect();

    print_table(
        "open-loop latency under load (sim us; 1 flooder + 3 quiet tenants)",
        &[
            "policy",
            "load %",
            "offered",
            "served",
            "shed",
            "p50",
            "p99",
            "quiet p50",
            "quiet p99",
            "ticks",
        ],
        &open_rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.to_string(),
                    r.load_pct.to_string(),
                    r.offered.to_string(),
                    r.served.to_string(),
                    r.shed.to_string(),
                    format!("{:.0}", r.p50_sim_us),
                    format!("{:.0}", r.p99_sim_us),
                    format!("{:.0}", r.quiet_p50_sim_us),
                    format!("{:.0}", r.quiet_p99_sim_us),
                    r.ticks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "closed-loop latency vs concurrency (sim us)",
        &["concurrency", "served", "p50", "p99", "req per sim s"],
        &closed_rows
            .iter()
            .map(|r| {
                vec![
                    r.concurrency.to_string(),
                    r.served.to_string(),
                    format!("{:.0}", r.p50_sim_us),
                    format!("{:.0}", r.p99_sim_us),
                    format!("{:.1}", r.throughput_req_per_sim_s),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n2x overload, quiet-tenant p99: DRR {:.0} vs FIFO {:.0} sim us \
         (ratio {qos_ratio:.3} <= 0.7); all frames bit-identical to the unloaded run",
        drr2.quiet_p99_sim_us, fifo2.quiet_p99_sim_us
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 8,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-load-v1\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(
        json,
        "    \"device\": \"RTX 4090 (simulated, functional)\","
    );
    let _ = writeln!(
        json,
        "    \"params\": \"[logN, L, dnum] = [{LOG_N}, {LEVELS}, 3], batch {BATCH}, \
         capacity {CAPACITY}, 1 flooder + {QUIET_TENANTS} quiet tenants, {ROUNDS} rounds\","
    );
    let _ = writeln!(json, "    \"open_loop\": [");
    for (i, r) in open_rows.iter().enumerate() {
        let comma = if i + 1 == open_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"policy\": \"{}\", \"offered_load_pct\": {}, \"offered\": {}, \
             \"served\": {}, \"shed\": {}, \"p50_sim_us\": {:.2}, \"p99_sim_us\": {:.2}, \
             \"quiet_p50_sim_us\": {:.2}, \"quiet_p99_sim_us\": {:.2}, \"ticks\": {}, \
             \"wall_req_per_sec\": {:.2}}}{comma}",
            r.policy,
            r.load_pct,
            r.offered,
            r.served,
            r.shed,
            r.p50_sim_us,
            r.p99_sim_us,
            r.quiet_p50_sim_us,
            r.quiet_p99_sim_us,
            r.ticks,
            r.wall_req_per_sec,
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"closed_loop\": [");
    for (i, r) in closed_rows.iter().enumerate() {
        let comma = if i + 1 == closed_rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"concurrency\": {}, \"served\": {}, \"p50_sim_us\": {:.2}, \
             \"p99_sim_us\": {:.2}, \"req_per_sim_s\": {:.2}, \
             \"wall_req_per_sec\": {:.2}}}{comma}",
            r.concurrency,
            r.served,
            r.p50_sim_us,
            r.p99_sim_us,
            r.throughput_req_per_sim_s,
            r.wall_req_per_sec,
        );
    }
    let _ = writeln!(json, "    ],");
    // Tick-engine phase timers summed over every run above. Wall-clock
    // (`wall_` keys are report-only in the perf gate); `overlapped_ticks`
    // counts plan-ahead overlaps and is 0 unless FIDES_PLAN_AHEAD is set.
    {
        let all = open_rows
            .iter()
            .map(|r| &r.stats)
            .chain(closed_rows.iter().map(|r| &r.stats));
        let (mut plan, mut replay, mut flush, mut overlapped) = (0u64, 0u64, 0u64, 0u64);
        for s in all {
            plan += s.plan_us;
            replay += s.replay_us;
            flush += s.flush_us;
            overlapped += s.overlapped_ticks;
        }
        let _ = writeln!(json, "    \"tick_engine\": {{");
        let _ = writeln!(json, "      \"wall_plan_us\": {plan},");
        let _ = writeln!(json, "      \"wall_replay_us\": {replay},");
        let _ = writeln!(json, "      \"wall_flush_us\": {flush},");
        let _ = writeln!(json, "      \"wall_overlapped_ticks\": {overlapped}");
        let _ = writeln!(json, "    }},");
    }
    let _ = writeln!(json, "    \"overload_2x\": {{");
    let _ = writeln!(
        json,
        "      \"drr_quiet_p99_sim_us\": {:.2},",
        drr2.quiet_p99_sim_us
    );
    let _ = writeln!(
        json,
        "      \"fifo_quiet_p99_sim_us\": {:.2},",
        fifo2.quiet_p99_sim_us
    );
    let _ = writeln!(json, "      \"quiet_p99_ratio\": {qos_ratio:.4},");
    let _ = writeln!(json, "      \"bit_identical\": true");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR8.json");
    println!("wrote {out_path}");
}
