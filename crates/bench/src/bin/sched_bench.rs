//! Scheduler v2 A/B snapshot: the PR 5 perf record (`BENCH_PR5.json`).
//!
//! Measures, with scheduler v2 **on vs off** (everything else identical):
//!
//! * the **batch-16 serve workload** of BENCH_PR4 (4 tenants × 4 `serve_lr`
//!   requests in one tick, 8 streams): simulated time, launches, stream
//!   occupancy, and the liveness pass's device-memory plan
//!   (`peak_device_bytes` / `allocations`);
//! * the **PR 2 LR-iteration graph** at paper scale (`[16, 26, 59, 4]`,
//!   cost-only): simulated time and occupancy;
//! * a **16-tick steady-state run** on the v2 server: plan-cache hit rate
//!   (tick 1 plans, ticks 2–16 replay the cached plan).
//!
//! The scheduler-v2 acceptance gates are asserted inline: v2 must be
//! *strictly* better on simulated time, stream occupancy and peak device
//! bytes for the batch-16 workload, strictly faster on the LR-iteration
//! graph, the steady-state hit rate must be ≥ 90%, and both schedulers
//! must produce bit-identical output frames.
//!
//! ```text
//! cargo run --release --bin sched_bench [OUT_PATH]
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use fides_api::CkksEngine;
use fides_baselines::synth_keys_with_rotations;
use fides_bench::{print_table, sim_time_us};
use fides_client::wire::EvalRequest;
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_serve::{Server, ServerConfig};
use fides_workloads::serve_lr::{synthetic_features, synthetic_model, ServeLrModel};
use fides_workloads::{LrConfig, LrTrainer};

const OUT_PATH: &str = "BENCH_PR5.json";
/// The A/B workload is the BENCH_PR4 serve mix scaled to `2^15` ring
/// degree and run **cost-only** (like every paper-scale bench in this
/// repo): at `2^11` every kernel sits on the simulator's 1.6 µs latency
/// floor, which pins stream occupancy to `floor / (streams ×
/// launch_overhead)` no matter what the scheduler does. At `2^15` kernel
/// execution exceeds the floor, so the schedule — not the floor —
/// determines occupancy.
const LOG_N_AB: usize = 15;
/// The steady-state cache run keeps BENCH_PR4's fast functional `2^11`
/// scale (cache behaviour is scale-independent).
const LOG_N_STEADY: usize = 11;
const LEVELS: usize = 6;
const DIM: usize = 32;
const TENANTS: usize = 4;
const REQS_PER_TENANT: usize = 4;
const NUM_STREAMS: usize = 8;
const STEADY_TICKS: usize = 16;

struct ServeRow {
    sched_v2: bool,
    sim_us: f64,
    launches: u64,
    fused: u64,
    occupancy_pct: f64,
    peak_device_bytes: u64,
    allocations: u64,
    frames: Vec<Vec<u8>>,
}

fn serve_params(sched_v2: bool, log_n: usize) -> CkksParameters {
    CkksParameters::new(log_n, LEVELS, 40, 3)
        .expect("bench params")
        .with_num_streams(NUM_STREAMS)
        .with_sched_v2(sched_v2)
}

fn tenants(log_n: usize) -> Vec<(ServeLrModel, fides_api::Session)> {
    (0..TENANTS)
        .map(|t| {
            let model = synthetic_model(DIM, t as u64 + 1);
            let engine = CkksEngine::builder()
                .log_n(log_n)
                .levels(LEVELS)
                .scale_bits(40)
                .rotations(&model.required_rotations())
                .seed(900 + t as u64)
                .build()
                .expect("tenant engine");
            (model, engine.session())
        })
        .collect()
}

/// Opens every tenant's session and returns the 16 pre-encrypted requests.
fn requests(server: &Server, tenants: &[(ServeLrModel, fides_api::Session)]) -> Vec<EvalRequest> {
    let mut reqs = Vec::new();
    for (t, (model, session)) in tenants.iter().enumerate() {
        let plains = model.session_plains(session.engine().max_level());
        let refs: Vec<(&[f64], usize)> = plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        let sid = server
            .open_session(session.session_request(&refs).expect("session request"))
            .expect("open session");
        let program = model.scoring_program(0);
        for r in 0..REQS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            reqs.push(
                session
                    .eval_request(sid, &[&features], &program)
                    .expect("encrypt request"),
            );
        }
    }
    reqs
}

fn run_serve(sched_v2: bool) -> ServeRow {
    // Cost-only: kernel bodies never run (CKKS server kernels are
    // data-oblivious, so the schedule is identical), which makes the
    // paper-scale ring affordable. Bit-identity of scheduler v2 is pinned
    // functionally by the determinism suites and the throughput bench.
    let server = Server::new(
        ServerConfig::new(serve_params(sched_v2, LOG_N_AB))
            .backend(fides_serve::ServeBackend::GpuSim {
                device: DeviceSpec::rtx_4090(),
                mode: ExecMode::CostOnly,
            })
            .batch_size(16),
    )
    .expect("server");
    let tenants = tenants(LOG_N_AB);
    let reqs = requests(&server, &tenants);

    let sync_before = server.sync_us().unwrap();
    server.reset_sim_stats();
    let tickets: Vec<_> = reqs
        .iter()
        .map(|req| server.submit(req.clone()).unwrap())
        .collect();
    while server.run_tick() > 0 {}
    let sim = server.sim_stats().expect("gpu-sim substrate");
    let sim_us = server.sync_us().unwrap() - sync_before;
    let stats = server.stats();

    let frames: Vec<Vec<u8>> = tickets
        .iter()
        .map(|t| {
            let resp = t.try_take().expect("tick served every request");
            assert!(resp.error.is_none(), "request failed: {:?}", resp.error);
            resp.outputs[0].to_bytes()
        })
        .collect();

    ServeRow {
        sched_v2,
        sim_us,
        launches: sim.kernel_launches,
        fused: stats.fused_kernels,
        occupancy_pct: sim.stream_occupancy() * 100.0,
        peak_device_bytes: sim.peak_device_bytes,
        allocations: sim.allocations,
        frames,
    }
}

/// Steady-state plan-cache measurement: the same batch of 16 requests
/// submitted for `STEADY_TICKS` consecutive ticks on one v2 server.
fn run_steady_state() -> (u64, u64, f64) {
    let server = Server::new(ServerConfig::new(serve_params(true, LOG_N_STEADY)).batch_size(16))
        .expect("server");
    let tenants = tenants(LOG_N_STEADY);
    let reqs = requests(&server, &tenants);
    for _ in 0..STEADY_TICKS {
        let tickets: Vec<_> = reqs
            .iter()
            .map(|req| server.submit(req.clone()).unwrap())
            .collect();
        assert_eq!(server.run_tick(), reqs.len(), "one tick drains the batch");
        for t in &tickets {
            assert!(t.try_take().expect("served").error.is_none());
        }
    }
    let stats = server.stats();
    (
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_hit_rate() * 100.0,
    )
}

/// The PR 2 LR-iteration graph at paper scale, cost-only.
fn run_lr_iteration(sched_v2: bool) -> (f64, f64) {
    let params = CkksParameters::paper_lr()
        .with_limb_batch(12)
        .with_sched_v2(sched_v2);
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params, Arc::clone(&gpu));
    let client = fides_client::ClientContext::new(ctx.raw_params().clone());
    let cfg = LrConfig::paper();
    let trainer = LrTrainer::new(&ctx, &client, cfg);
    let keys = synth_keys_with_rotations(&ctx, &trainer.required_rotations());
    let top = ctx.max_level();
    let w = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let x = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let y = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let _ = trainer.iteration(&w, &x, &y, &keys).unwrap();
    gpu.sync();
    gpu.reset_stats();
    let us = sim_time_us(&gpu, || {
        let _ = trainer.iteration(&w, &x, &y, &keys).unwrap();
    });
    let s = gpu.stats();
    println!(
        "  lr sched_v2={sched_v2}: sim {us:.1} us, occ {:.3}%, launches {}, dram {} MB, l2hit {} MB",
        s.stream_occupancy() * 100.0,
        s.kernel_launches,
        s.dram_read_bytes >> 20,
        s.l2_hit_bytes >> 20
    );
    let per: Vec<u64> = s.per_stream.iter().map(|p| p.launches).collect();
    println!("  per-stream launches: {per:?}");
    (us, s.stream_occupancy() * 100.0)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| OUT_PATH.into());

    println!("serve batch-16 workload, scheduler v2 on/off...");
    let v2 = run_serve(true);
    let v1 = run_serve(false);
    println!(
        "v2: sim {:.2} us, occ {:.4}%, launches {}, fused {}, peak {} B, allocs {}",
        v2.sim_us, v2.occupancy_pct, v2.launches, v2.fused, v2.peak_device_bytes, v2.allocations
    );
    println!(
        "v1: sim {:.2} us, occ {:.4}%, launches {}, fused {}, peak {} B, allocs {}",
        v1.sim_us, v1.occupancy_pct, v1.launches, v1.fused, v1.peak_device_bytes, v1.allocations
    );
    assert_eq!(
        v2.frames, v1.frames,
        "scheduler v2 must not change output frames"
    );
    assert!(
        v2.sim_us < v1.sim_us,
        "scheduler v2 must strictly lower serve sim time: {:.1} vs {:.1} µs",
        v2.sim_us,
        v1.sim_us
    );
    assert!(
        v2.occupancy_pct > v1.occupancy_pct,
        "scheduler v2 must strictly raise stream occupancy: {:.2}% vs {:.2}%",
        v2.occupancy_pct,
        v1.occupancy_pct
    );
    assert!(
        v2.peak_device_bytes < v1.peak_device_bytes,
        "liveness pooling must strictly lower peak device bytes: {} vs {}",
        v2.peak_device_bytes,
        v1.peak_device_bytes
    );

    println!("steady-state plan-cache run ({STEADY_TICKS} ticks)...");
    let (hits, misses, hit_rate_pct) = run_steady_state();
    assert!(
        hit_rate_pct >= 90.0,
        "steady-state plan-cache hit rate must be ≥ 90%: {hit_rate_pct:.1}% ({hits} hits / {misses} misses)"
    );

    println!("LR-iteration graph at paper scale, scheduler v2 on/off...");
    let (lr_v2_us, lr_v2_occ) = run_lr_iteration(true);
    let (lr_v1_us, lr_v1_occ) = run_lr_iteration(false);
    assert!(
        lr_v2_us < lr_v1_us,
        "scheduler v2 must strictly lower LR-iteration sim time: {lr_v2_us:.1} vs {lr_v1_us:.1} µs"
    );

    print_table(
        "scheduler v2 vs v1 (batch-16 serve workload + LR iteration)",
        &[
            "workload", "sched", "sim ms", "launches", "fused", "occup %", "peak MB", "allocs",
        ],
        &[
            row("serve b16", &v2),
            row("serve b16", &v1),
            vec![
                "lr_iter".into(),
                "v2".into(),
                format!("{:.2}", lr_v2_us / 1e3),
                "-".into(),
                "-".into(),
                format!("{lr_v2_occ:.1}"),
                "-".into(),
                "-".into(),
            ],
            vec![
                "lr_iter".into(),
                "v1".into(),
                format!("{:.2}", lr_v1_us / 1e3),
                "-".into(),
                "-".into(),
                format!("{lr_v1_occ:.1}"),
                "-".into(),
                "-".into(),
            ],
        ],
    );
    println!(
        "\nplan cache: {hits} hits / {misses} misses over {STEADY_TICKS} ticks ({hit_rate_pct:.1}%)"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 5,");
    let _ = writeln!(json, "  \"schema\": \"fideslib-bench-sched-v2-v1\",");
    let _ = writeln!(json, "  \"gpu_sim\": {{");
    let _ = writeln!(json, "    \"device\": \"RTX 4090 (simulated)\",");
    let _ = writeln!(
        json,
        "    \"serve_params\": \"[logN, L, dnum] = [{LOG_N_AB}, {LEVELS}, 3], serve_lr dim {DIM}, \
         {TENANTS} tenants x {REQS_PER_TENANT} requests, {NUM_STREAMS} streams, batch 16 \
         (steady-state cache run at logN {LOG_N_STEADY})\","
    );
    let _ = writeln!(json, "    \"serve_batch16\": [");
    for (i, r) in [&v2, &v1].into_iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"sched_v2\": {}, \"sim_us\": {:.2}, \"kernel_launches\": {}, \
             \"fused_kernels\": {}, \"stream_occupancy_pct\": {:.2}, \
             \"peak_device_bytes\": {}, \"allocations\": {}}}{}",
            r.sched_v2,
            r.sim_us,
            r.launches,
            r.fused,
            r.occupancy_pct,
            r.peak_device_bytes,
            r.allocations,
            if i == 0 { "," } else { "" }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"lr_iteration\": [");
    let _ = writeln!(
        json,
        "      {{\"sched_v2\": true, \"sim_us\": {lr_v2_us:.2}, \"stream_occupancy_pct\": {lr_v2_occ:.2}}},"
    );
    let _ = writeln!(
        json,
        "      {{\"sched_v2\": false, \"sim_us\": {lr_v1_us:.2}, \"stream_occupancy_pct\": {lr_v1_occ:.2}}}"
    );
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"plan_cache\": {{");
    let _ = writeln!(json, "      \"steady_ticks\": {STEADY_TICKS},");
    let _ = writeln!(json, "      \"hits\": {hits},");
    let _ = writeln!(json, "      \"misses\": {misses},");
    let _ = writeln!(json, "      \"hit_rate_pct\": {hit_rate_pct:.2}");
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"v2_vs_v1\": {{");
    let _ = writeln!(
        json,
        "      \"serve_time_reduction_pct\": {:.2},",
        100.0 * (v1.sim_us - v2.sim_us) / v1.sim_us
    );
    let _ = writeln!(
        json,
        "      \"serve_occupancy_gain_pct\": {:.2},",
        v2.occupancy_pct - v1.occupancy_pct
    );
    let _ = writeln!(
        json,
        "      \"serve_memory_reduction_pct\": {:.2},",
        100.0 * (v1.peak_device_bytes - v2.peak_device_bytes) as f64 / v1.peak_device_bytes as f64
    );
    let _ = writeln!(
        json,
        "      \"lr_time_reduction_pct\": {:.2},",
        100.0 * (lr_v1_us - lr_v2_us) / lr_v1_us
    );
    let _ = writeln!(json, "      \"bit_identical\": true");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).expect("write BENCH_PR5.json");
    println!("wrote {out_path}");
}

fn row(workload: &str, r: &ServeRow) -> Vec<String> {
    vec![
        workload.into(),
        if r.sched_v2 { "v2" } else { "v1" }.into(),
        format!("{:.2}", r.sim_us / 1e3),
        r.launches.to_string(),
        r.fused.to_string(),
        format!("{:.1}", r.occupancy_pct),
        format!("{:.2}", r.peak_device_bytes as f64 / 1e6),
        r.allocations.to_string(),
    ]
}
