//! Table V: performance comparison of CKKS primitives.
//!
//! `[N, L, Δ, dnum] = [2^16, 29, 2^59, 4]`, maximum-level ciphertexts.
//! Columns: OpenFHE 1-thread (CPU model), OpenFHE+HEXL 24-thread (CPU
//! model), Phantom (simulated RTX 4090), FIDESlib (simulated RTX 4090) —
//! with the paper's reported values alongside. Pass `--measure` to also run
//! the functional Rust path single-threaded as a measured CPU reference.

use std::sync::Arc;

use fides_baselines::{cpu_context, ryzen_1t, ryzen_hexl_24t, synth_keys_with_rotations};
use fides_bench::{fmt_us, print_table, sim_time_us};
use fides_core::{adapter, Ciphertext, CkksContext, CkksParameters, EvalKeySet, Plaintext};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

struct Bench {
    gpu: Arc<GpuSim>,
    ctx: Arc<CkksContext>,
    keys: EvalKeySet,
}

impl Bench {
    fn new(params: &CkksParameters, spec: DeviceSpec, cpu_flavor: bool) -> Self {
        let (gpu, ctx) = if cpu_flavor {
            cpu_context(params, spec)
        } else {
            let gpu = GpuSim::new(spec, ExecMode::CostOnly);
            let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
            (gpu, ctx)
        };
        let keys = synth_keys_with_rotations(&ctx, &[1]);
        Self { gpu, ctx, keys }
    }

    fn ct(&self) -> Ciphertext {
        adapter::placeholder_ciphertext(
            &self.ctx,
            self.ctx.max_level(),
            self.ctx.fresh_scale(),
            self.ctx.n() / 2,
        )
    }

    fn pt(&self) -> Plaintext {
        adapter::placeholder_plaintext(
            &self.ctx,
            self.ctx.max_level(),
            self.ctx.fresh_scale(),
            self.ctx.n() / 2,
        )
    }

    /// Warm-up then measure one operation.
    fn op_us(&self, op: &str) -> f64 {
        let a = self.ct();
        let b = self.ct();
        let p = self.pt();
        let run = || match op {
            "ScalarAdd" => {
                let _ = a.add_scalar(1.5);
            }
            "PtAdd" => {
                let _ = a.add_plain(&p).unwrap();
            }
            "HAdd" => {
                let _ = a.add(&b).unwrap();
            }
            "ScalarMult" => {
                let _ = a.mul_scalar(1.5);
            }
            "PtMult" => {
                let _ = a.mul_plain(&p).unwrap();
            }
            "Rescale" => {
                let mut c = a.duplicate();
                c.rescale_in_place().unwrap();
            }
            "HRotate" => {
                let _ = a.rotate(1, &self.keys).unwrap();
            }
            "HMult" => {
                let _ = a.mul(&b, &self.keys).unwrap();
            }
            other => panic!("unknown op {other}"),
        };
        run(); // warm the L2 model
        sim_time_us(&self.gpu, run)
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--measure");
    let params = CkksParameters::paper_default();
    println!("Table V reproduction — [logN, L, Δ, dnum] = [16, 29, 59, 4], ℓ = 29");
    // The paper reports FIDESlib at the best limb batch per platform; sweep
    // and pick the HMult-optimal batch for the 4090 (Fig. 7 methodology).
    let best_batch = {
        let mut best = (4usize, f64::INFINITY);
        for batch in [2usize, 4, 6, 8, 10, 12] {
            let b = Bench::new(
                &params.clone().with_limb_batch(batch),
                DeviceSpec::rtx_4090(),
                false,
            );
            let t = b.op_us("HMult");
            if t < best.1 {
                best = (batch, t);
            }
        }
        println!(
            "best limb batch for RTX 4090: {} ({:.0} µs HMult)",
            best.0, best.1
        );
        best.0
    };

    let cpu1 = Bench::new(&params, ryzen_1t(), true);
    let hexl = Bench::new(&params, ryzen_hexl_24t(), true);
    let phantom = {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
        let ctx = CkksContext::new(fides_baselines::phantom_params(&params), Arc::clone(&gpu));
        let keys = synth_keys_with_rotations(&ctx, &[1]);
        Bench { gpu, ctx, keys }
    };
    let fides = Bench::new(
        &params.clone().with_limb_batch(best_batch),
        DeviceSpec::rtx_4090(),
        false,
    );

    // (op, paper 1T, paper HEXL, paper Phantom µs, paper FIDESlib µs)
    let ops: &[(&str, f64, f64, Option<f64>, f64)] = &[
        ("ScalarAdd", 1_280.0, 106.0, None, 16.63),
        ("PtAdd", 5_260.0, 5_800.0, Some(20.64), 17.79),
        ("HAdd", 7_840.0, 8_390.0, Some(82.66), 50.70),
        ("ScalarMult", 4_340.0, 225.0, None, 44.15),
        ("PtMult", 10_140.0, 5_320.0, Some(31.91), 21.74),
        ("Rescale", 50_800.0, 4_920.0, Some(224.58), 156.11),
        ("HRotate", 370_710.0, 105_300.0, Some(1_139.0), 1_107.0),
        ("HMult", 406_240.0, 151_580.0, Some(1_220.0), 1_084.0),
    ];

    let phantom_supported = |op: &str| !["ScalarAdd", "ScalarMult"].contains(&op);
    let mut rows = Vec::new();
    for &(op, p1t, phexl, pphantom, pfides) in ops {
        let c1 = cpu1.op_us(op);
        let ch = hexl.op_us(op);
        let cp = if phantom_supported(op) {
            Some(phantom.op_us(op))
        } else {
            None
        };
        let cf = fides.op_us(op);
        let measured = if measure {
            let m = measured_functional_us(&params, op);
            fmt_us(m).to_string()
        } else {
            "-".into()
        };
        rows.push(vec![
            op.to_string(),
            fmt_us(c1),
            fmt_us(p1t),
            fmt_us(ch),
            fmt_us(phexl),
            cp.map_or("N/A".into(), fmt_us),
            pphantom.map_or("N/A".into(), fmt_us),
            fmt_us(cf),
            fmt_us(pfides),
            format!("{:6.0}x", c1 / cf),
            format!("{:6.0}x", p1t / pfides),
            measured,
        ]);
    }
    print_table(
        "Table V: CKKS primitives",
        &[
            "op",
            "OpenFHE-1T (model)",
            "(paper)",
            "HEXL-24T (model)",
            "(paper)",
            "Phantom 4090 (sim)",
            "(paper)",
            "FIDESlib 4090 (sim)",
            "(paper)",
            "speedup",
            "(paper)",
            "measured-1T",
        ],
        &rows,
    );
    println!(
        "\nKSK device footprint (mult key): {:.1} MB",
        fides.keys.bytes() as f64 / 1e6
    );
}

/// Optional: wall-clock of the functional Rust path, single-threaded — an
/// honest measured stand-in for a scalar CPU CKKS library.
fn measured_functional_us(params: &CkksParameters, op: &str) -> f64 {
    use fides_client::{ClientContext, KeyGenerator};
    use rand::SeedableRng;
    let gpu = GpuSim::new(ryzen_1t(), ExecMode::Functional);
    let ctx = CkksContext::new(fides_baselines::cpu_params(params), gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 1);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let rot = kg.rotation_key(&sk, 1);
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &[(1, rot)], None)
        .expect("client-generated keys are always loadable");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let values: Vec<f64> = (0..ctx.n() / 2).map(|i| (i as f64 * 0.01).sin()).collect();
    let pt = client
        .encode_real(&values, ctx.fresh_scale(), ctx.max_level())
        .expect("bench inputs are always encodable");
    let raw_ct = client
        .encrypt(&pt, &pk, &mut rng)
        .expect("bench inputs are always encryptable");
    let a = adapter::load_ciphertext(&ctx, &raw_ct)
        .expect("client-encrypted ciphertexts are always loadable");
    let b = a.duplicate();
    let dev_pt =
        adapter::load_plaintext(&ctx, &pt).expect("client-encoded plaintexts are always loadable");
    fides_baselines::measure_wall_us(|| match op {
        "ScalarAdd" => {
            let _ = a.add_scalar(1.5);
        }
        "PtAdd" => {
            let _ = a.add_plain(&dev_pt).unwrap();
        }
        "HAdd" => {
            let _ = a.add(&b).unwrap();
        }
        "ScalarMult" => {
            let _ = a.mul_scalar(1.5);
        }
        "PtMult" => {
            let _ = a.mul_plain(&dev_pt).unwrap();
        }
        "Rescale" => {
            let mut c = a.duplicate();
            c.rescale_in_place().unwrap();
        }
        "HRotate" => {
            let _ = a.rotate(1, &keys).unwrap();
        }
        "HMult" => {
            let _ = a.mul(&b, &keys).unwrap();
        }
        other => panic!("unknown op {other}"),
    })
}
