//! Table VII: logistic-regression training performance.
//!
//! `[logN, L, Δ, dnum] = [16, 26, 59, 4]`, mini-batches of 1,024 samples ×
//! 32 features (32,768 slots), bootstrapping every iteration.

use std::sync::Arc;

use fides_baselines::{cpu_context, ryzen_1t, ryzen_hexl_24t, synth_keys_with_rotations};
use fides_bench::{fmt_us, print_table, sim_time_us};
use fides_client::ClientContext;
use fides_core::{
    adapter, boot, BackendCt, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters,
    EvalBackend, GpuSimBackend,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_workloads::{LrConfig, LrTrainer};

fn lr_times(params: &CkksParameters, spec: DeviceSpec, cpu_flavor: bool) -> (f64, f64) {
    let (gpu, ctx) = if cpu_flavor {
        cpu_context(params, spec)
    } else {
        let gpu = GpuSim::new(spec, ExecMode::CostOnly);
        let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
        (gpu, ctx)
    };
    let client = ClientContext::new(ctx.raw_params().clone());
    let cfg = LrConfig::paper();
    let trainer = LrTrainer::new(&ctx, &client, cfg);
    // Bootstrap configuration leaving ≥ 6 levels for the next iteration.
    let boot_cfg = BootstrapConfig {
        slots: cfg.slots(),
        level_budget: (2, 2),
        k_range: 128.0,
        double_angles: 6,
        degree: 31,
    };

    let mut shifts = trainer.required_rotations();
    shifts.extend(boot::required_rotations(ctx.n(), &boot_cfg));
    let keys = synth_keys_with_rotations(&ctx, &shifts);
    let backend = GpuSimBackend::new(Arc::clone(&ctx), keys);
    let booter = Bootstrapper::new(&backend, &client, boot_cfg).expect("chain deep enough");
    assert!(booter.min_output_level() >= LrTrainer::LEVELS_PER_ITERATION);
    let backend = backend.with_bootstrapper(booter);
    let keys = backend.keys();

    let top = ctx.max_level();
    let w = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let x = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());
    let y = adapter::placeholder_ciphertext(&ctx, top, ctx.standard_scale(top), cfg.slots());

    // Warm up.
    let _ = trainer.iteration(&w, &x, &y, keys).unwrap();
    gpu.sync();
    let iter_us = sim_time_us(&gpu, || {
        let _ = trainer.iteration(&w, &x, &y, keys).unwrap();
    });
    let iter_boot_us = sim_time_us(&gpu, || {
        let w1 = trainer.iteration(&w, &x, &y, keys).unwrap();
        let mut low = w1;
        low.drop_to_level(0).unwrap();
        let _ = backend.bootstrap(&BackendCt::Device(low)).unwrap();
    });
    (iter_us, iter_boot_us)
}

fn main() {
    let params = CkksParameters::paper_lr().with_limb_batch(12);
    println!("Table VII reproduction — LR training, [16, 26, 59, 4], 1024×32 batches");

    let (f_it, f_ib) = lr_times(&params, DeviceSpec::rtx_4090(), false);
    let (c1_it, c1_ib) = lr_times(&params, ryzen_1t(), true);
    let (ch_it, ch_ib) = lr_times(&params, ryzen_hexl_24t(), true);

    // Paper: iteration 1555 / 448 / 23 ms; iteration+boot 16233 / 7233 / 169 ms.
    let rows = vec![
        vec![
            "Iteration".to_string(),
            fmt_us(c1_it),
            fmt_us(1_555_000.0),
            fmt_us(ch_it),
            fmt_us(448_000.0),
            fmt_us(f_it),
            fmt_us(23_000.0),
            format!("{:5.1}x", ch_it / f_it),
            "19.5x".to_string(),
        ],
        vec![
            "Iteration + Bootstrap".to_string(),
            fmt_us(c1_ib),
            fmt_us(16_233_000.0),
            fmt_us(ch_ib),
            fmt_us(7_233_000.0),
            fmt_us(f_ib),
            fmt_us(169_000.0),
            format!("{:5.1}x", ch_ib / f_ib),
            "42.8x".to_string(),
        ],
    ];
    print_table(
        "Table VII: logistic regression",
        &[
            "phase",
            "OpenFHE-1T (model)",
            "(paper)",
            "HEXL-24T (model)",
            "(paper)",
            "FIDESlib 4090 (sim)",
            "(paper)",
            "vs HEXL",
            "(paper)",
        ],
        &rows,
    );
}
