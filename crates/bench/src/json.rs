//! A minimal JSON reader for the perf-regression gate.
//!
//! The workspace's vendored `serde` is a no-op stand-in (no registry access
//! in the build image), so the `bench_diff` gate carries its own ~150-line
//! recursive-descent parser. It reads exactly the JSON the bench binaries
//! emit — objects, arrays, numbers, strings, booleans, null — and flattens
//! numeric leaves into `path → value` pairs for comparison.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64` — bench metrics are all within
    /// exact-double range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Flattens every **numeric** leaf into `dotted.path → value` pairs
    /// (array elements as `path[i]`), the form the regression gate
    /// compares.
    pub fn numeric_leaves(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        self.collect_leaves(String::new(), &mut out);
        out
    }

    fn collect_leaves(&self, path: String, out: &mut BTreeMap<String, f64>) {
        match self {
            Json::Num(v) => {
                out.insert(path, *v);
            }
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    item.collect_leaves(format!("{path}[{i}]"), out);
                }
            }
            Json::Obj(fields) => {
                for (key, value) in fields {
                    let sub = if path.is_empty() {
                        key.clone()
                    } else {
                        format!("{path}.{key}")
                    };
                    value.collect_leaves(sub, out);
                }
            }
            Json::Null | Json::Bool(_) | Json::Str(_) => {}
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of document".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'u' => {
                        // The bench files are ASCII; decode BMP escapes only.
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        char::from_u32(code).ok_or("non-scalar \\u escape")?
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                });
                *pos += 1;
            }
            _ => {
                let ch_start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[ch_start..*pos]).map_err(|_| "non-UTF8 string")?,
                );
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
          "pr": 4, "schema": "x",
          "gpu_sim": {
            "rows": [
              {"batch": 1, "sim_us": 12.5, "ok": true},
              {"batch": 16, "sim_us": 3.25, "note": null}
            ]
          }
        }"#;
        let v = Json::parse(doc).unwrap();
        let leaves = v.numeric_leaves();
        assert_eq!(leaves["pr"], 4.0);
        assert_eq!(leaves["gpu_sim.rows[0].sim_us"], 12.5);
        assert_eq!(leaves["gpu_sim.rows[1].batch"], 16.0);
        assert_eq!(leaves.len(), 5);
    }

    #[test]
    fn parses_committed_bench_files() {
        for path in ["../../BENCH_PR2.json", "../../BENCH_PR3.json"] {
            let text = std::fs::read_to_string(path).unwrap();
            let v = Json::parse(&text).unwrap();
            assert!(
                !v.numeric_leaves().is_empty(),
                "{path} should carry metrics"
            );
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#"{"k": "a\"b\\c\ndA"}"#).unwrap();
        match v {
            Json::Obj(fields) => {
                assert_eq!(fields[0].1, Json::Str("a\"b\\c\ndA".into()));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn numbers_including_exponents() {
        let v = Json::parse("[1, -2.5, 3e2, 4.5E-1]").unwrap();
        match v {
            Json::Arr(items) => {
                let nums: Vec<f64> = items
                    .iter()
                    .map(|i| match i {
                        Json::Num(n) => *n,
                        _ => panic!("expected number"),
                    })
                    .collect();
                assert_eq!(nums, vec![1.0, -2.5, 300.0, 0.45]);
            }
            _ => panic!("expected array"),
        }
    }
}
