//! Regression guard for the `ablate_fusion` claim: with fusion enabled the
//! planner must issue **strictly fewer kernel launches** and the simulated
//! time must be **lower** than with every fusion disabled — at the same
//! paper-scale configuration the ablation binary reports.

use std::sync::Arc;

use fides_baselines::{synth_keys, synth_keys_with_rotations};
use fides_client::ClientContext;
use fides_core::{
    adapter, boot, BackendCt, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters,
    EvalBackend, FusionConfig, GpuSimBackend,
};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};

/// Mirrors `ablate_fusion::measure`: HMult + Rescale, steady state.
fn measure(params: &CkksParameters) -> (f64, u64, u64) {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
    let keys = synth_keys(&ctx);
    let ct = adapter::placeholder_ciphertext(&ctx, ctx.max_level(), ctx.fresh_scale(), ctx.n() / 2);
    let run = || {
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
    };
    run();
    gpu.sync();
    gpu.reset_stats();
    ctx.reset_sched_stats();
    let t0 = gpu.sync();
    run();
    let dt = gpu.sync() - t0;
    (
        dt,
        gpu.stats().kernel_launches,
        ctx.sched_stats().fused_kernels,
    )
}

#[test]
fn fusion_strictly_reduces_launches_and_time() {
    let base = CkksParameters::paper_default().with_limb_batch(12);
    let (fused_us, fused_launches, fused_away) =
        measure(&base.clone().with_fusion(FusionConfig::default()));
    let (plain_us, plain_launches, none_away) = measure(&base.with_fusion(FusionConfig::none()));

    assert!(
        fused_launches < plain_launches,
        "fusion must strictly reduce kernel launches: {fused_launches} vs {plain_launches}"
    );
    assert!(
        fused_us < plain_us,
        "fusion must lower simulated time: {fused_us} µs vs {plain_us} µs"
    );
    assert!(fused_away > 0, "planner ledger must record fused kernels");
    assert_eq!(
        none_away, 0,
        "FusionConfig::none() must disable graph fusion"
    );
}

/// The full bootstrap circuit under the planner: simulated time, launch
/// count, and fused-kernel ledger at one fusion setting.
fn measure_bootstrap(params: &CkksParameters) -> (f64, u64, u64) {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let ctx = CkksContext::new(params.clone(), Arc::clone(&gpu));
    let client = ClientContext::new(ctx.raw_params().clone());
    let slots = 8usize;
    let config = BootstrapConfig::for_slots(slots);
    let shifts = boot::required_rotations(ctx.n(), &config);
    let keys = synth_keys_with_rotations(&ctx, &shifts);
    let backend = GpuSimBackend::new(Arc::clone(&ctx), keys);
    let booter = Bootstrapper::new(&backend, &client, config).expect("chain deep enough");
    let backend = backend.with_bootstrapper(booter);
    let ct = BackendCt::Device(adapter::placeholder_ciphertext(
        &ctx,
        0,
        ctx.standard_scale(0),
        slots,
    ));
    let _ = backend.bootstrap(&ct).unwrap();
    gpu.sync();
    gpu.reset_stats();
    ctx.reset_sched_stats();
    let t0 = gpu.sync();
    let _ = backend.bootstrap(&ct).unwrap();
    let dt = gpu.sync() - t0;
    (
        dt,
        gpu.stats().kernel_launches,
        ctx.sched_stats().fused_kernels,
    )
}

/// Extension of the guard to the PR 3 workload: the **whole bootstrap
/// circuit** recorded through the planner must launch strictly fewer
/// kernels (and run faster) with fusion than with every fusion disabled.
#[test]
fn bootstrap_circuit_fusion_strictly_reduces_launches() {
    let base = CkksParameters::toy_boot();
    let (fused_us, fused_launches, fused_away) =
        measure_bootstrap(&base.clone().with_fusion(FusionConfig::default()));
    let (plain_us, plain_launches, none_away) =
        measure_bootstrap(&base.with_fusion(FusionConfig::none()));

    assert!(
        fused_launches < plain_launches,
        "bootstrap fusion must strictly reduce kernel launches: \
         {fused_launches} vs {plain_launches}"
    );
    assert!(
        fused_us < plain_us,
        "bootstrap fusion must lower simulated time: {fused_us} µs vs {plain_us} µs"
    );
    assert!(
        fused_away > 0,
        "planner ledger must record fused kernels across the bootstrap graph"
    );
    assert_eq!(
        none_away, 0,
        "FusionConfig::none() must disable graph fusion"
    );
}

#[test]
fn graph_fusion_alone_reduces_launches() {
    // Isolate the planner's elementwise pass from the in-kernel fusions.
    let base = CkksParameters::paper_default().with_limb_batch(12);
    let (_, with_graph, _) = measure(&base.clone().with_fusion(FusionConfig::default()));
    let (_, without_graph, _) = measure(&base.with_fusion(FusionConfig {
        elementwise: false,
        ..FusionConfig::default()
    }));
    assert!(
        with_graph < without_graph,
        "elementwise graph fusion must reduce launches: {with_graph} vs {without_graph}"
    );
}
