//! Property-based tests for RNS invariants: CRT bijectivity and the
//! approximate base-conversion error bound.

use fides_math::{generate_ntt_primes, Modulus};
use fides_rns::{BaseConverter, CrtContext, UBig};
use proptest::prelude::*;

fn chains() -> (Vec<Modulus>, Vec<Modulus>) {
    let src: Vec<Modulus> = generate_ntt_primes(30, 3, 64)
        .into_iter()
        .map(Modulus::new)
        .collect();
    let dst: Vec<Modulus> = generate_ntt_primes(32, 3, 64)
        .into_iter()
        .map(Modulus::new)
        .collect();
    (src, dst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CRT: residues → value → residues is the identity.
    #[test]
    fn crt_bijective(v in any::<i64>()) {
        let moduli: Vec<Modulus> =
            generate_ntt_primes(40, 3, 64).into_iter().map(Modulus::new).collect();
        let crt = CrtContext::new(&moduli);
        let residues = crt.residues_from_i128(v as i128);
        let back = crt.reconstruct(&residues);
        for (r, m) in residues.iter().zip(&moduli) {
            prop_assert_eq!(back.rem_u64(m.value()), *r);
        }
        // And the centered float is the original value (well within f64).
        prop_assert!((crt.reconstruct_centered_f64(&residues) - v as f64).abs()
            <= v.abs() as f64 * 1e-12 + 0.5);
    }

    /// Base conversion: output ≡ x + u·C (mod t_j) with 0 ≤ u < |src| — the
    /// HPS approximate-conversion guarantee the hybrid key switch relies on.
    #[test]
    fn base_conversion_error_bound(seed in any::<u64>()) {
        let (src, dst) = chains();
        let conv = BaseConverter::new(&src, &dst);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let residues: Vec<u64> = src.iter().map(|m| next() % m.value()).collect();
        let src_limbs: Vec<Vec<u64>> = residues.iter().map(|&r| vec![r]).collect();
        let refs: Vec<&[u64]> = src_limbs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![Vec::new(); dst.len()];
        conv.convert(&refs, &mut out);

        let crt = CrtContext::new(&src);
        let x = crt.reconstruct(&residues);
        let c = UBig::product_of(&src.iter().map(|m| m.value()).collect::<Vec<_>>());
        for (j, t) in dst.iter().enumerate() {
            let got = out[j][0];
            let mut ok = false;
            let mut candidate = x.clone();
            for _ in 0..=src.len() {
                if candidate.rem_u64(t.value()) == got {
                    ok = true;
                    break;
                }
                candidate.add_assign_big(&c);
            }
            prop_assert!(ok, "u out of bound for dst {}", j);
        }
    }

    /// UBig arithmetic: add/sub roundtrip and residue consistency of
    /// multiplication.
    #[test]
    fn ubig_arithmetic(a in any::<u128>(), b in any::<u128>(), k in 1u64..u64::MAX) {
        let mut x = UBig::from_u128(a);
        x.add_assign_big(&UBig::from_u128(b));
        // x = a + b: check mod a 61-bit prime.
        let p = (1u64 << 61) - 1;
        let expect = ((a % p as u128) + (b % p as u128)) % p as u128;
        prop_assert_eq!(x.rem_u64(p) as u128, expect);
        x.sub_assign_big(&UBig::from_u128(b));
        prop_assert_eq!(x, UBig::from_u128(a));
        let y = UBig::from_u128(a).mul_u64(k);
        let expect = (a % p as u128) * (k as u128 % p as u128) % p as u128;
        prop_assert_eq!(y.rem_u64(p) as u128, expect);
    }
}
