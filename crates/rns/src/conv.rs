//! Fast RNS base conversion (paper §III-F.3, Eq. 1).
//!
//! `Conv_{C→B}([x]_C) = [x + u·C]_B` for some small `u ∈ [0, |C|)`: the
//! approximate (HPS-style) conversion used by ModUp/ModDown/Rescale in CKKS.
//! Computationally it is a limb-wise scaling by `[(C/c_i)^{-1}]_{c_i}`
//! followed by a modular matrix–vector product against `[C/c_i]_{t_j}` — the
//! same coefficient-parallel matrix–matrix shape the FIDESlib base-conversion
//! kernel exploits, including 128-bit accumulation with a single deferred
//! reduction per output element.

use fides_math::{Modulus, ShoupPrecomp};
use serde::{Deserialize, Serialize};

/// Precomputed tables converting from source base `C = {c_i}` to destination
/// base `B = {t_j}`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BaseConverter {
    src: Vec<Modulus>,
    dst: Vec<Modulus>,
    /// `[(C/c_i)^{-1}]_{c_i}` with Shoup companions (the Eq. 1 scaling).
    src_hat_inv: Vec<ShoupPrecomp>,
    /// `[C/c_i]_{t_j}`, indexed `[i][j]`.
    src_hat_mod_dst: Vec<Vec<u64>>,
    /// How many 128-bit partial products can accumulate before a reduction is
    /// forced (overflow guard).
    chunk: usize,
}

impl BaseConverter {
    /// Builds conversion tables. All products are computed residue-wise, so
    /// no multiprecision arithmetic is needed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty or contains duplicate primes.
    pub fn new(src: &[Modulus], dst: &[Modulus]) -> Self {
        assert!(!src.is_empty(), "source base must be non-empty");
        for (i, a) in src.iter().enumerate() {
            for b in &src[i + 1..] {
                assert_ne!(a.value(), b.value(), "source base primes must be distinct");
            }
        }
        let src_hat_inv = (0..src.len())
            .map(|i| {
                let m = &src[i];
                let mut hat = 1u64;
                for (k, c) in src.iter().enumerate() {
                    if k != i {
                        hat = m.mul_mod(hat, m.reduce_u64(c.value()));
                    }
                }
                ShoupPrecomp::new(m.inv_mod(hat), m)
            })
            .collect();
        let src_hat_mod_dst = (0..src.len())
            .map(|i| {
                dst.iter()
                    .map(|t| {
                        let mut hat = 1u64;
                        for (k, c) in src.iter().enumerate() {
                            if k != i {
                                hat = t.mul_mod(hat, t.reduce_u64(c.value()));
                            }
                        }
                        hat
                    })
                    .collect()
            })
            .collect();
        // Largest partial product is < 2^124 for ≤62-bit primes; compute how
        // many can be summed in a u128 without overflow.
        let max_src = src.iter().map(|m| m.value()).max().unwrap() as u128;
        let max_dst = dst.iter().map(|m| m.value()).max().unwrap_or(3) as u128;
        let headroom = u128::MAX / (max_src * max_dst);
        let chunk = headroom.min(1 << 20) as usize;
        assert!(chunk >= 1);
        Self {
            src: src.to_vec(),
            dst: dst.to_vec(),
            src_hat_inv,
            src_hat_mod_dst,
            chunk,
        }
    }

    /// Source base.
    pub fn src(&self) -> &[Modulus] {
        &self.src
    }

    /// Destination base.
    pub fn dst(&self) -> &[Modulus] {
        &self.dst
    }

    /// The Eq. 1 scaling step for source limb `i`:
    /// `out[k] = [x[k] · (C/c_i)^{-1}]_{c_i}`.
    ///
    /// FIDESlib fuses this into the iNTT that precedes conversion; exposing
    /// it separately lets the server library do the same.
    pub fn scale_input(&self, i: usize, x: &[u64], out: &mut [u64]) {
        fides_math::simd::shoup_mul_into(&self.src[i], &self.src_hat_inv[i], x, out);
    }

    /// In-place variant of [`Self::scale_input`].
    pub fn scale_input_inplace(&self, i: usize, x: &mut [u64]) {
        fides_math::simd::shoup_mul_assign(&self.src[i], &self.src_hat_inv[i], x);
    }

    /// Computes destination limb `j` from the **pre-scaled** source limbs:
    /// `out[k] = Σ_i scaled[i][k] · [C/c_i]_{t_j} mod t_j`, accumulating in
    /// 128 bits with one deferred reduction.
    ///
    /// The slab path runs four coefficients at a time; the deferred-reduction
    /// schedule is counted per source limb (never per value), so the four
    /// lanes reduce at the same points as the scalar loop and stay
    /// bit-identical.
    pub fn convert_scaled_limb(&self, scaled: &[&[u64]], j: usize, out: &mut [u64]) {
        assert_eq!(scaled.len(), self.src.len());
        let t = &self.dst[j];
        let n = out.len();
        for s in scaled {
            assert_eq!(s.len(), n);
        }
        let mut k = 0usize;
        if fides_math::simd_enabled() {
            while k + 4 <= n {
                let mut acc = [0u128; 4];
                let mut since_reduce = 0usize;
                for (i, s) in scaled.iter().enumerate() {
                    let hat = self.src_hat_mod_dst[i][j] as u128;
                    for l in 0..4 {
                        acc[l] += s[k + l] as u128 * hat;
                    }
                    since_reduce += 1;
                    if since_reduce == self.chunk {
                        let r = t.reduce_u128_x4(acc);
                        for l in 0..4 {
                            acc[l] = r[l] as u128;
                        }
                        since_reduce = 0;
                    }
                }
                out[k..k + 4].copy_from_slice(&t.reduce_u128_x4(acc));
                k += 4;
            }
        }
        for (k, o) in out.iter_mut().enumerate().skip(k) {
            let mut acc = 0u128;
            let mut since_reduce = 0usize;
            for (i, s) in scaled.iter().enumerate() {
                acc += s[k] as u128 * self.src_hat_mod_dst[i][j] as u128;
                since_reduce += 1;
                if since_reduce == self.chunk {
                    acc = t.reduce_u128(acc) as u128;
                    since_reduce = 0;
                }
            }
            *o = t.reduce_u128(acc);
        }
    }

    /// Whole conversion: scales inputs and produces every destination limb.
    /// `src_limbs` and `dst_limbs` are per-prime coefficient slices.
    ///
    /// # Panics
    ///
    /// Panics on limb-count or length mismatches.
    pub fn convert(&self, src_limbs: &[&[u64]], dst_limbs: &mut [Vec<u64>]) {
        assert_eq!(src_limbs.len(), self.src.len());
        assert_eq!(dst_limbs.len(), self.dst.len());
        let n = src_limbs.first().map_or(0, |s| s.len());
        let scaled: Vec<Vec<u64>> = (0..self.src.len())
            .map(|i| {
                let mut buf = vec![0u64; n];
                self.scale_input(i, src_limbs[i], &mut buf);
                buf
            })
            .collect();
        let scaled_refs: Vec<&[u64]> = scaled.iter().map(|v| v.as_slice()).collect();
        for (j, dst) in dst_limbs.iter_mut().enumerate() {
            dst.resize(n, 0);
            self.convert_scaled_limb(&scaled_refs, j, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::UBig;
    use fides_math::generate_ntt_primes;

    fn moduli(bits: u32, count: usize, seed_n: usize) -> Vec<Modulus> {
        generate_ntt_primes(bits, count, seed_n)
            .into_iter()
            .map(Modulus::new)
            .collect()
    }

    /// Exact CRT of per-prime residues (test oracle).
    fn crt_exact(residues: &[u64], primes: &[Modulus]) -> UBig {
        let q = UBig::product_of(&primes.iter().map(|m| m.value()).collect::<Vec<_>>());
        let mut acc = UBig::zero();
        for (i, m) in primes.iter().enumerate() {
            // q_hat = Q / q_i computed as product of the others.
            let others: Vec<u64> = primes
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != i)
                .map(|(_, m)| m.value())
                .collect();
            let q_hat = UBig::product_of(&others);
            let q_hat_mod = q_hat.rem_u64(m.value());
            let inv = m.inv_mod(q_hat_mod);
            let y = m.mul_mod(residues[i], inv);
            acc.add_assign_big(&q_hat.mul_u64(y));
        }
        while acc.cmp_big(&q) != std::cmp::Ordering::Less {
            acc.sub_assign_big(&q);
        }
        acc
    }

    #[test]
    fn conversion_is_exact_up_to_multiples_of_source_product() {
        let src = moduli(30, 3, 64);
        let dst = moduli(31, 4, 64);
        let conv = BaseConverter::new(&src, &dst);
        let mut state = 0xc0ffee_u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 16usize;
        let src_limbs: Vec<Vec<u64>> = src
            .iter()
            .map(|m| (0..n).map(|_| next() % m.value()).collect())
            .collect();
        let refs: Vec<&[u64]> = src_limbs.iter().map(|v| v.as_slice()).collect();
        let mut dst_limbs: Vec<Vec<u64>> = vec![Vec::new(); dst.len()];
        conv.convert(&refs, &mut dst_limbs);

        let c_prod = UBig::product_of(&src.iter().map(|m| m.value()).collect::<Vec<_>>());
        for k in 0..n {
            let residues: Vec<u64> = src_limbs.iter().map(|l| l[k]).collect();
            let x = crt_exact(&residues, &src);
            for (j, t) in dst.iter().enumerate() {
                let got = dst_limbs[j][k];
                // got ≡ x + u*C (mod t_j) for some u in [0, |src|).
                let mut ok = false;
                for u in 0..=src.len() as u64 {
                    let mut candidate = x.clone();
                    for _ in 0..u {
                        candidate.add_assign_big(&c_prod);
                    }
                    if candidate.rem_u64(t.value()) == got {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "coeff {k} dst {j}: no small u explains the output");
            }
        }
    }

    #[test]
    fn conversion_exact_when_scaled_inputs_small() {
        // The approximate conversion is exact (u = 0) when the post-scaling
        // values s_i = [x_i · (C/c_i)^{-1}]_{c_i} satisfy Σ s_i / c_i < 1.
        // Construct such an input: pick tiny s_i, set x_i = [s_i · (C/c_i)]_{c_i}.
        let src = moduli(30, 2, 64);
        let dst = moduli(40, 2, 64);
        let conv = BaseConverter::new(&src, &dst);
        let s = [1u64, 2u64];
        let src_limbs: Vec<Vec<u64>> = src
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let hat = {
                    let mut h = 1u64;
                    for (k, c) in src.iter().enumerate() {
                        if k != i {
                            h = m.mul_mod(h, m.reduce_u64(c.value()));
                        }
                    }
                    h
                };
                vec![m.mul_mod(s[i], hat)]
            })
            .collect();
        let refs: Vec<&[u64]> = src_limbs.iter().map(|v| v.as_slice()).collect();
        let mut dst_limbs = vec![Vec::new(); dst.len()];
        conv.convert(&refs, &mut dst_limbs);
        // Exact integer: X = s_0·c_1 + s_1·c_0 (since C/c_0 = c_1 etc.).
        let x = UBig::from_u128(
            s[0] as u128 * src[1].value() as u128 + s[1] as u128 * src[0].value() as u128,
        );
        for (j, t) in dst.iter().enumerate() {
            assert_eq!(dst_limbs[j][0], x.rem_u64(t.value()), "dst limb {j}");
        }
    }

    #[test]
    fn scale_then_accumulate_matches_whole_conversion() {
        let src = moduli(35, 3, 64);
        let dst = moduli(36, 2, 64);
        let conv = BaseConverter::new(&src, &dst);
        let n = 8usize;
        let src_limbs: Vec<Vec<u64>> = src
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (0..n as u64)
                    .map(|k| (k * 7919 + i as u64) % m.value())
                    .collect()
            })
            .collect();
        let refs: Vec<&[u64]> = src_limbs.iter().map(|v| v.as_slice()).collect();
        let mut expected = vec![Vec::new(); dst.len()];
        conv.convert(&refs, &mut expected);

        // Manual two-step path.
        let mut scaled = src_limbs.clone();
        for (i, s) in scaled.iter_mut().enumerate() {
            conv.scale_input_inplace(i, s);
        }
        let scaled_refs: Vec<&[u64]> = scaled.iter().map(|v| v.as_slice()).collect();
        for (j, exp) in expected.iter().enumerate() {
            let mut out = vec![0u64; n];
            conv.convert_scaled_limb(&scaled_refs, j, &mut out);
            assert_eq!(&out, exp);
        }
    }

    #[test]
    fn single_prime_source_roundtrip() {
        // Converting from {q} to {q} after scaling by hat_inv = 1 is identity.
        let q = moduli(30, 1, 64);
        let conv = BaseConverter::new(&q, &q);
        let refs = [vec![5u64, 7, 11]];
        let r: Vec<&[u64]> = refs.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![Vec::new()];
        conv.convert(&r, &mut out);
        assert_eq!(out[0], refs[0]);
    }

    /// The x4 block in [`BaseConverter::convert_scaled_limb`] must be
    /// bit-identical to the scalar loop: same count-based deferred-reduction
    /// schedule, same Barrett, same bits — with lengths hitting both the
    /// 4-lane body and the scalar tail, and wide (59-bit) primes so the
    /// accumulators run close to the deferred-reduction headroom.
    #[test]
    fn convert_scaled_limb_identical_with_simd_on_and_off() {
        let src = moduli(59, 9, 64);
        let dst = moduli(58, 3, 64);
        let conv = BaseConverter::new(&src, &dst);
        for n in [1usize, 4, 7, 64, 67] {
            let mut state = 0xfeed_u64 ^ n as u64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let src_limbs: Vec<Vec<u64>> = src
                .iter()
                .map(|m| (0..n).map(|_| next() % m.value()).collect())
                .collect();
            let refs: Vec<&[u64]> = src_limbs.iter().map(|v| v.as_slice()).collect();
            let run = |enabled: bool| {
                fides_math::set_simd_enabled(Some(enabled));
                let mut out = vec![Vec::new(); dst.len()];
                conv.convert(&refs, &mut out);
                out
            };
            let off = run(false);
            let on = run(true);
            assert_eq!(off, on, "n={n}: simd on/off outputs diverge");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_source_primes_rejected() {
        let p = Modulus::new(65537);
        BaseConverter::new(&[p, p], &[Modulus::new(998244353)]);
    }
}
