//! Exact CRT reconstruction and residue generation.
//!
//! Used by the client for encoding (big scaled integers → RNS residues) and
//! decoding (RNS residues → centered reals), and by property tests as the
//! ground-truth oracle for the approximate base conversion.

use fides_math::Modulus;
use serde::{Deserialize, Serialize};

use crate::bigint::UBig;

/// CRT tables for one modulus chain `Q = q_0 ⋯ q_ℓ`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CrtContext {
    moduli: Vec<Modulus>,
    q: UBig,
    q_hat: Vec<UBig>,
    q_hat_inv: Vec<u64>,
}

impl CrtContext {
    /// Builds tables for the given (distinct) primes.
    pub fn new(moduli: &[Modulus]) -> Self {
        assert!(!moduli.is_empty());
        let values: Vec<u64> = moduli.iter().map(|m| m.value()).collect();
        let q = UBig::product_of(&values);
        let q_hat: Vec<UBig> = (0..moduli.len())
            .map(|i| {
                let others: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i)
                    .map(|(_, &v)| v)
                    .collect();
                UBig::product_of(&others)
            })
            .collect();
        let q_hat_inv = moduli
            .iter()
            .enumerate()
            .map(|(i, m)| m.inv_mod(q_hat[i].rem_u64(m.value())))
            .collect();
        Self {
            moduli: moduli.to_vec(),
            q,
            q_hat,
            q_hat_inv,
        }
    }

    /// The chain.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// `Q` as a big integer.
    pub fn q(&self) -> &UBig {
        &self.q
    }

    /// `log2(Q)`.
    pub fn log2_q(&self) -> f64 {
        self.moduli.iter().map(|m| (m.value() as f64).log2()).sum()
    }

    /// Exact reconstruction of one coefficient in `[0, Q)`.
    pub fn reconstruct(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.moduli.len());
        let mut acc = UBig::zero();
        for (i, (&r, m)) in residues.iter().zip(&self.moduli).enumerate() {
            let y = m.mul_mod(r, self.q_hat_inv[i]);
            acc.add_assign_big(&self.q_hat[i].mul_u64(y));
        }
        while acc.cmp_big(&self.q) != std::cmp::Ordering::Less {
            acc.sub_assign_big(&self.q);
        }
        acc
    }

    /// Reconstructs one coefficient as a **centered** `f64` in
    /// `(−Q/2, Q/2]`. Precision is limited by the `f64` mantissa, which is
    /// ample for CKKS decode (message ≪ Q).
    pub fn reconstruct_centered_f64(&self, residues: &[u64]) -> f64 {
        let x = self.reconstruct(residues);
        // centered: if 2x > Q then x - Q (negative).
        let mut twice = x.clone();
        twice.add_assign_big(&x);
        if twice.cmp_big(&self.q) == std::cmp::Ordering::Greater {
            let mut neg = self.q.clone();
            neg.sub_assign_big(&x);
            -neg.to_f64()
        } else {
            x.to_f64()
        }
    }

    /// Reduces a signed 128-bit integer into residues for every prime.
    pub fn residues_from_i128(&self, v: i128) -> Vec<u64> {
        self.moduli
            .iter()
            .map(|m| {
                let p = m.value() as i128;
                let mut r = v % p;
                if r < 0 {
                    r += p;
                }
                r as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fides_math::generate_ntt_primes;

    fn ctx(bits: u32, count: usize) -> CrtContext {
        let moduli: Vec<Modulus> = generate_ntt_primes(bits, count, 64)
            .into_iter()
            .map(Modulus::new)
            .collect();
        CrtContext::new(&moduli)
    }

    #[test]
    fn roundtrip_small_values() {
        let c = ctx(40, 4);
        for v in [0i128, 1, -1, 123456789, -987654321, 1 << 100, -(1 << 100)] {
            let residues = c.residues_from_i128(v);
            let back = c.reconstruct_centered_f64(&residues);
            let expect = v as f64;
            if v == 0 {
                assert_eq!(back, 0.0);
            } else {
                assert!(
                    (back - expect).abs() / expect.abs().max(1.0) < 1e-12,
                    "v={v} back={back}"
                );
            }
        }
    }

    #[test]
    fn reconstruct_matches_residues() {
        let c = ctx(35, 3);
        let residues = c.residues_from_i128(0x1234_5678_9abc);
        let x = c.reconstruct(&residues);
        for (i, m) in c.moduli().iter().enumerate() {
            assert_eq!(x.rem_u64(m.value()), residues[i]);
        }
    }

    #[test]
    fn centered_range() {
        let c = ctx(30, 2);
        // Q - 1 should decode as -1.
        let residues: Vec<u64> = c.moduli().iter().map(|m| m.value() - 1).collect();
        assert_eq!(c.reconstruct_centered_f64(&residues), -1.0);
    }

    #[test]
    fn log2_q_accumulates() {
        let c = ctx(40, 5);
        assert!((c.log2_q() - 200.0).abs() < 1.0);
    }

    #[test]
    fn single_prime_chain() {
        let c = ctx(30, 1);
        let residues = c.residues_from_i128(-42);
        assert_eq!(c.reconstruct_centered_f64(&residues), -42.0);
    }
}
