//! Digit decomposition for hybrid key switching (Han–Ki, paper §II-A).
//!
//! The modulus chain `Q = q_0 · … · q_L` is partitioned into `dnum` *digits*
//! of `α = ⌈(L+1)/dnum⌉` consecutive primes. Key switching decomposes a
//! polynomial into its per-digit residues, lifts each digit to the extended
//! base `Q_ℓ ∪ P`, and inner-products with the corresponding switching-key
//! component. At level `ℓ < L` only the digits intersecting the active prime
//! range participate — this is the "digit dropping" that produces the
//! stair-step speedups of Fig. 6.

use std::ops::Range;

use serde::{Deserialize, Serialize};

/// The static digit layout of a modulus chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigitPartition {
    num_q: usize,
    dnum: usize,
    alpha: usize,
}

impl DigitPartition {
    /// Partitions a chain of `num_q` primes (`L + 1` for depth `L`) into
    /// `dnum` digits.
    ///
    /// # Panics
    ///
    /// Panics if `dnum` is zero or exceeds `num_q`.
    pub fn new(num_q: usize, dnum: usize) -> Self {
        assert!(dnum >= 1, "dnum must be positive");
        assert!(dnum <= num_q, "dnum cannot exceed the number of primes");
        let alpha = num_q.div_ceil(dnum);
        Self { num_q, dnum, alpha }
    }

    /// Total primes in the chain.
    pub fn num_q(&self) -> usize {
        self.num_q
    }

    /// Number of digits at the *maximum* level.
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Digit size `α` (number of primes per digit; the last digit may be
    /// smaller). Also the required number of auxiliary primes `|P| = α`.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// Prime-index range of digit `j` over the full chain.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ dnum`.
    pub fn digit_range(&self, j: usize) -> Range<usize> {
        assert!(j < self.dnum);
        let start = j * self.alpha;
        let end = ((j + 1) * self.alpha).min(self.num_q);
        start..end
    }

    /// Number of digits that contain at least one active prime at `level`
    /// (`level + 1` active primes).
    pub fn digits_at_level(&self, level: usize) -> usize {
        assert!(level < self.num_q);
        (level + 1).div_ceil(self.alpha)
    }

    /// Prime-index range of digit `j` restricted to the active primes at
    /// `level`. Empty iff the digit is entirely dropped.
    pub fn digit_range_at_level(&self, j: usize, level: usize) -> Range<usize> {
        let full = self.digit_range(j);
        let end = full.end.min(level + 1);
        full.start..end.max(full.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_partition() {
        // [N, L, Δ, dnum] = [2^16, 29, 59, 4] → 30 primes, 4 digits of 8 (last 6).
        let p = DigitPartition::new(30, 4);
        assert_eq!(p.alpha(), 8);
        assert_eq!(p.digit_range(0), 0..8);
        assert_eq!(p.digit_range(1), 8..16);
        assert_eq!(p.digit_range(2), 16..24);
        assert_eq!(p.digit_range(3), 24..30);
    }

    #[test]
    fn ranges_tile_the_chain() {
        for (num_q, dnum) in [(30usize, 4usize), (27, 3), (6, 2), (13, 5), (9, 9), (45, 4)] {
            let p = DigitPartition::new(num_q, dnum);
            let mut covered = 0;
            for j in 0..dnum {
                let r = p.digit_range(j);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, num_q);
        }
    }

    #[test]
    fn digit_count_shrinks_with_level() {
        let p = DigitPartition::new(30, 4);
        assert_eq!(p.digits_at_level(29), 4);
        assert_eq!(p.digits_at_level(24), 4); // prime 24 is in digit 3
        assert_eq!(p.digits_at_level(23), 3);
        assert_eq!(p.digits_at_level(15), 2);
        assert_eq!(p.digits_at_level(7), 1);
        assert_eq!(p.digits_at_level(0), 1);
    }

    #[test]
    fn level_restricted_ranges() {
        let p = DigitPartition::new(30, 4);
        assert_eq!(p.digit_range_at_level(0, 29), 0..8);
        assert_eq!(p.digit_range_at_level(1, 10), 8..11);
        assert_eq!(p.digit_range_at_level(2, 10), 16..16); // dropped
        assert!(p.digit_range_at_level(2, 10).is_empty());
        assert_eq!(p.digit_range_at_level(3, 29), 24..30);
    }

    #[test]
    fn single_digit_partition() {
        let p = DigitPartition::new(10, 1);
        assert_eq!(p.alpha(), 10);
        assert_eq!(p.digits_at_level(9), 1);
        assert_eq!(p.digit_range(0), 0..10);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn too_many_digits_rejected() {
        DigitPartition::new(3, 4);
    }
}
