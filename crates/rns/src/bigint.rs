//! A minimal unsigned big integer.
//!
//! The RNS server never needs multiprecision arithmetic (that is the point of
//! RNS), but the *client* does: exact CRT reconstruction during decoding and
//! the reference implementations our property tests compare against. This is
//! a deliberately small little-endian `Vec<u64>` implementation covering only
//! the operations those paths need.

use serde::{Deserialize, Serialize};

/// Arbitrary-precision unsigned integer, little-endian 64-bit words, no
/// leading zero words (canonical form).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UBig {
    words: Vec<u64>,
}

impl UBig {
    /// Zero.
    pub fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        Self { words: vec![1] }
    }

    /// From a single word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { words: vec![v] }
        }
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = Self {
            words: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.words.last() {
            None => 0,
            Some(&w) => (self.words.len() as u32 - 1) * 64 + (64 - w.leading_zeros()),
        }
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Three-way comparison.
    pub fn cmp_big(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.words.len().cmp(&other.words.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for (a, b) in self.words.iter().rev().zip(other.words.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// `self += other`.
    pub fn add_assign_big(&mut self, other: &Self) {
        let n = self.words.len().max(other.words.len());
        self.words.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.words.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.words[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.words.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign_big(&mut self, other: &Self) {
        assert!(
            self.cmp_big(other) != std::cmp::Ordering::Less,
            "UBig underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.words.len() {
            let b = other.words.get(i).copied().unwrap_or(0);
            let (d1, o1) = self.words[i].overflowing_sub(b);
            let (d2, o2) = d1.overflowing_sub(borrow);
            self.words[i] = d2;
            borrow = (o1 as u64) + (o2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// `self * scalar`, returning a new value.
    pub fn mul_u64(&self, scalar: u64) -> Self {
        if scalar == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut words = Vec::with_capacity(self.words.len() + 1);
        let mut carry = 0u128;
        for &w in &self.words {
            let prod = w as u128 * scalar as u128 + carry;
            words.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            words.push(carry as u64);
        }
        Self { words }
    }

    /// `self % m` for a word-sized modulus.
    pub fn rem_u64(&self, m: u64) -> u64 {
        let mut rem = 0u128;
        for &w in self.words.iter().rev() {
            rem = ((rem << 64) | w as u128) % m as u128;
        }
        rem as u64
    }

    /// Approximates the value as an `f64` (round-to-nearest on the top bits).
    pub fn to_f64(&self) -> f64 {
        match self.words.len() {
            0 => 0.0,
            1 => self.words[0] as f64,
            n => {
                let hi = self.words[n - 1] as f64;
                let mid = self.words[n - 2] as f64;
                let lo = if n >= 3 {
                    self.words[n - 3] as f64
                } else {
                    0.0
                };
                let base = (n as f64 - 3.0) * 64.0;
                (hi * 2f64.powi(128) + mid * 2f64.powi(64) + lo) * 2f64.powf(base)
            }
        }
    }

    /// Builds `Π primes` as a big integer.
    pub fn product_of(primes: &[u64]) -> Self {
        let mut acc = Self::one();
        for &p in primes {
            acc = acc.mul_u64(p);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_normalization() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::from_u64(0), UBig::zero());
        assert_eq!(UBig::from_u128(1 << 64).bits(), 65);
        assert_eq!(UBig::from_u64(1).bits(), 1);
        assert_eq!(UBig::from_u64(255).bits(), 8);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = UBig::from_u128(u128::MAX - 5);
        let b = UBig::from_u128(12345678901234567890);
        let mut c = a.clone();
        c.add_assign_big(&b);
        c.sub_assign_big(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn carry_propagation() {
        let mut a = UBig::from_u128(u128::MAX);
        a.add_assign_big(&UBig::one());
        assert_eq!(a.bits(), 129);
        assert_eq!(a.rem_u64(3), 1u64);
    }

    #[test]
    fn mul_and_rem_match_u128() {
        let a = UBig::from_u128(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let m = a.mul_u64(0xdead_beef);
        // Verify by residue arithmetic against a prime.
        let p = 2305843009213693951u64; // 2^61 - 1
        let expect = (0x1234_5678_9abc_def0_1111_2222_3333_4444u128 % p as u128) as u64;
        let expect = (expect as u128 * 0xdead_beefu128 % p as u128) as u64;
        assert_eq!(m.rem_u64(p), expect);
    }

    #[test]
    fn product_of_primes_has_expected_residues() {
        let primes = [65537u64, 998244353, 1000003];
        let q = UBig::product_of(&primes);
        for &p in &primes {
            assert_eq!(q.rem_u64(p), 0);
        }
        assert_eq!(q.rem_u64(7), {
            let mut r = 1u64;
            for &p in &primes {
                r = r * (p % 7) % 7;
            }
            r
        });
    }

    #[test]
    fn to_f64_accuracy() {
        let a = UBig::from_u128(1 << 100);
        let f = a.to_f64();
        assert!((f - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-12);
        let b = UBig::product_of(&[(1 << 61) - 1, (1 << 61) - 1]);
        assert!((b.to_f64().log2() - 122.0).abs() < 1e-9);
    }

    #[test]
    fn cmp_ordering() {
        use std::cmp::Ordering;
        let a = UBig::from_u64(5);
        let b = UBig::from_u128(1 << 80);
        assert_eq!(a.cmp_big(&b), Ordering::Less);
        assert_eq!(b.cmp_big(&a), Ordering::Greater);
        assert_eq!(a.cmp_big(&a.clone()), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut a = UBig::from_u64(1);
        a.sub_assign_big(&UBig::from_u64(2));
    }
}
