//! # fides-rns
//!
//! Residue-number-system machinery for `fideslib-rs`: base conversion
//! (paper §III-F.3), digit decomposition for hybrid key switching, exact CRT
//! reconstruction for the client, and the scalar tables ModDown/Rescale need.
//!
//! ```
//! use fides_math::Modulus;
//! use fides_rns::{BaseConverter, DigitPartition};
//!
//! let src: Vec<Modulus> =
//!     fides_math::generate_ntt_primes(30, 2, 64).into_iter().map(Modulus::new).collect();
//! let dst: Vec<Modulus> =
//!     fides_math::generate_ntt_primes(31, 2, 64).into_iter().map(Modulus::new).collect();
//! let conv = BaseConverter::new(&src, &dst);
//! let limbs = [vec![42u64], vec![42u64]];
//! let refs: Vec<&[u64]> = limbs.iter().map(|v| v.as_slice()).collect();
//! let mut out = vec![Vec::new(); 2];
//! conv.convert(&refs, &mut out);
//! // Approximate conversion: the output is x + u·C for a small u ≥ 0.
//! let c = fides_rns::UBig::product_of(&src.iter().map(|m| m.value()).collect::<Vec<_>>());
//! let x_plus_uc = (42 + c.rem_u64(dst[0].value()) as u128) % dst[0].value() as u128;
//! assert!(out[0][0] == 42 || out[0][0] as u128 == x_plus_uc);
//!
//! let digits = DigitPartition::new(30, 4);
//! assert_eq!(digits.alpha(), 8);
//! ```

#![warn(missing_docs)]

mod bigint;
mod conv;
mod crt;
mod digits;

pub use bigint::UBig;
pub use conv::BaseConverter;
pub use crt::CrtContext;
pub use digits::DigitPartition;

use fides_math::Modulus;

/// `Π primes mod m`, computed residue-wise.
pub fn product_mod(primes: &[u64], m: &Modulus) -> u64 {
    primes
        .iter()
        .fold(1u64, |acc, &p| m.mul_mod(acc, m.reduce_u64(p)))
}

/// `(Π primes)^{-1} mod m` — the ModDown correction scalar `P^{-1}`.
///
/// # Panics
///
/// Panics if the product is divisible by `m` (bases must be coprime).
pub fn product_inv_mod(primes: &[u64], m: &Modulus) -> u64 {
    m.inv_mod(product_mod(primes, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_mod_matches_bigint() {
        let primes = [65537u64, 998244353, 1000003, 7919];
        let m = Modulus::new(2305843009213693951);
        let big = UBig::product_of(&primes);
        assert_eq!(product_mod(&primes, &m), big.rem_u64(m.value()));
    }

    #[test]
    fn product_inv_is_inverse() {
        let primes = [65537u64, 998244353];
        let m = Modulus::new(1000003);
        let p = product_mod(&primes, &m);
        let inv = product_inv_mod(&primes, &m);
        assert_eq!(m.mul_mod(p, inv), 1);
    }
}
