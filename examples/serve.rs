//! The multi-tenant serving layer: N tenants, one evaluation server,
//! cross-request graph batching.
//!
//! Each tenant owns a distinct LR scoring model (uploaded once as a
//! preloaded session plaintext) and its own keys; the server multiplexes
//! every tenant over one simulated device, recording a whole batch of
//! requests into a single stream-graph per tick so the planner's fusion
//! applies **across tenants** and the replay fills every device stream.
//!
//! ```text
//! cargo run --release --example serve
//! ```

use fideslib::workloads::serve_lr::{synthetic_features, synthetic_model};
use fideslib::{core::CkksParameters, CkksEngine, Server, ServerConfig};

const TENANTS: usize = 4;
const REQUESTS_PER_TENANT: usize = 4;
const DIM: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One server, one simulated device, one parameter chain (the engine
    // default dnum is 3 — tenants must match the chain exactly).
    let params = CkksParameters::new(10, 6, 40, 3)?.with_num_streams(8);
    let server = Server::new(ServerConfig::new(params).batch_size(8))?;
    println!(
        "server up: chain fingerprint {:#018x}, batch size 8, 8 streams",
        server.params_hash()
    );

    // Tenants: engine-backed thin clients, each with its own model/keys.
    let mut tenants = Vec::new();
    for t in 0..TENANTS {
        let model = synthetic_model(DIM, t as u64 + 1);
        let engine = CkksEngine::builder()
            .log_n(10)
            .levels(6)
            .scale_bits(40)
            .rotations(&model.required_rotations())
            .seed(100 + t as u64)
            .build()?;
        let session = engine.session();
        let plains = model.session_plains(engine.max_level());
        let plain_refs: Vec<(&[f64], usize)> =
            plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        let sid = server.open_session(session.session_request(&plain_refs)?)?;
        println!("tenant {t}: session {sid} open ({DIM}-feature model uploaded)");
        tenants.push((model, session, sid));
    }

    // Phase 1 — batched scoring: every tenant enqueues its requests, then
    // ticks drain the queue in cross-tenant batches.
    let mut tickets = Vec::new();
    for (t, (model, session, sid)) in tenants.iter().enumerate() {
        let program = model.scoring_program(0);
        for r in 0..REQUESTS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            let req = session.eval_request(*sid, &[&features], &program)?;
            tickets.push((t, r, server.submit(req)?));
        }
    }
    while server.run_tick() > 0 {}

    let mut worst = 0.0f64;
    for (t, r, ticket) in &tickets {
        let resp = ticket.try_take().expect("tick served every request");
        let (model, session, _) = &tenants[*t];
        let score = session.decrypt_response(&resp, &[1])?[0][0];
        let expect = model.score_plain(&synthetic_features(DIM, *t as u64, *r as u64));
        worst = worst.max((score - expect).abs());
        if *r == 0 {
            println!("tenant {t} request {r}: score {score:.6} (plain {expect:.6})");
        }
    }
    assert!(worst < 1e-3, "encrypted scores drifted: {worst}");

    // Phase 2 — concurrent tenants: threads block in eval(), batching
    // whatever lands in the queue together.
    std::thread::scope(|scope| {
        for (t, (model, session, sid)) in tenants.iter().enumerate() {
            let server = server.clone();
            let program = model.scoring_program(0);
            scope.spawn(move || {
                let features = synthetic_features(DIM, t as u64, 99);
                let req = session
                    .eval_request(*sid, &[&features], &program)
                    .expect("encrypt");
                let resp = server.eval(req).expect("admitted");
                let score = session.decrypt_response(&resp, &[1]).expect("decrypt")[0][0];
                let expect = model.score_plain(&features);
                assert!((score - expect).abs() < 1e-3);
            });
        }
    });

    let stats = server.stats();
    let sim = server.sim_stats().expect("gpu-sim substrate");
    println!(
        "\nserved {} requests in {} batches (mean batch {:.1}, max {})",
        stats.requests,
        stats.batches,
        stats.mean_batch(),
        stats.max_batch
    );
    println!(
        "graphs: {} kernels recorded → {} launched ({} fused away, incl. cross-tenant chains)",
        stats.recorded_kernels, stats.planned_launches, stats.fused_kernels
    );
    println!(
        "device: {} launches total, stream occupancy {:.1}%, makespan {:.1} ms",
        sim.kernel_launches,
        sim.stream_occupancy() * 100.0,
        server.sync_us().unwrap() / 1e3
    );
    println!("worst |encrypted − plain| across all scores: {worst:.2e}");

    // Phase 3 — the same tenants on a TWO-device server. The consistent-
    // hash router homes each tenant (= its evaluation keys) on a shard;
    // each tick routes and merges per shard, so the shards' graphs plan
    // and replay concurrently on their own simulated devices. Responses
    // are bit-identical to the single-device server's — placement changes
    // the schedule, never the math.
    let params = CkksParameters::new(10, 6, 40, 3)?
        .with_num_streams(8)
        .with_num_devices(2);
    let dist = Server::new(ServerConfig::new(params).batch_size(8))?;
    println!("\ntwo-device server up ({} shards)", dist.num_devices());
    let mut tickets = Vec::new();
    for (t, (model, session, _)) in tenants.iter().enumerate() {
        let plains = model.session_plains(session.engine().max_level());
        let plain_refs: Vec<(&[f64], usize)> =
            plains.iter().map(|(v, l)| (v.as_slice(), *l)).collect();
        let sid = dist.open_session(session.session_request(&plain_refs)?)?;
        let program = model.scoring_program(0);
        for r in 0..REQUESTS_PER_TENANT {
            let features = synthetic_features(DIM, t as u64, r as u64);
            tickets.push((
                t,
                r,
                dist.submit(session.eval_request(sid, &[&features], &program)?)?,
            ));
        }
    }
    while dist.run_tick() > 0 {}
    let mut dist_worst = 0.0f64;
    for (t, r, ticket) in &tickets {
        let resp = ticket.try_take().expect("tick served every request");
        let (model, session, _) = &tenants[*t];
        let score = session.decrypt_response(&resp, &[1])?[0][0];
        let expect = model.score_plain(&synthetic_features(DIM, *t as u64, *r as u64));
        dist_worst = dist_worst.max((score - expect).abs());
    }
    assert!(dist_worst < 1e-3, "sharded scores drifted: {dist_worst}");
    let dstats = dist.stats();
    println!(
        "sharded {} requests across devices as {:?}, fleet makespan {:.1} ms",
        dstats.requests,
        dstats.per_device_requests,
        dist.sync_us().unwrap() / 1e3
    );
    println!("worst sharded |encrypted − plain|: {dist_worst:.2e}");
    Ok(())
}
