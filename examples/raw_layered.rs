//! The raw layered API: encrypt on the client, compute on the simulated-GPU
//! server, decrypt on the client — wiring every layer by hand (client
//! context, key generation, the adapter, manual rescaling and level
//! alignment). `examples/quickstart.rs` is the same computation through the
//! `CkksEngine` session API; benchmarks and research code use this layered
//! path when they need full control.
//!
//! ```text
//! cargo run --release --example raw_layered
//! ```

use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Server context on a simulated RTX 4090 (functional mode: the math
    //    really runs; the simulator also produces GPU timings).
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let params = CkksParameters::new(12, 6, 40, 3)?;
    let ctx = CkksContext::new(params, gpu);

    // 2. Client side: keys and data (the OpenFHE role in Fig. 1).
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 42);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &[], None)?;

    let xs: Vec<f64> = (0..8).map(|i| i as f64 / 10.0).collect();
    let ys: Vec<f64> = (0..8).map(|i| 1.0 - i as f64 / 20.0).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let scale = ctx.fresh_scale();
    let raw_x = client.encrypt(
        &client.encode_real(&xs, scale, ctx.max_level())?,
        &pk,
        &mut rng,
    )?;
    let ct_x = adapter::load_ciphertext(&ctx, &raw_x)?;
    let raw_y = client.encrypt(
        &client.encode_real(&ys, scale, ctx.max_level())?,
        &pk,
        &mut rng,
    )?;
    let ct_y = adapter::load_ciphertext(&ctx, &raw_y)?;

    // 3. Server: compute x·y + 2x homomorphically.
    let mut prod = ct_x.mul(&ct_y, &keys)?;
    prod.rescale_in_place()?;
    let mut two_x = ct_x.mul_scalar_rescale(2.0)?;
    two_x.drop_to_level(prod.level())?;
    let result = prod.add(&two_x)?;

    // 4. Client: decrypt and compare.
    let got = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&result), &sk)?)?;
    println!("slot |  x     y   | x*y + 2x | decrypted");
    for i in 0..8 {
        let expect = xs[i] * ys[i] + 2.0 * xs[i];
        println!(
            "{i:4} | {:4.2}  {:4.2} | {expect:8.4} | {:9.4}",
            xs[i], ys[i], got[i]
        );
        assert!((got[i] - expect).abs() < 1e-4);
    }

    // 5. The same run produced a simulated-GPU timing ledger.
    let stats = ctx.gpu().stats();
    println!(
        "\nsimulated device: {} | kernels launched: {} | peak device memory: {:.1} MB",
        ctx.gpu().spec().name,
        stats.kernel_launches,
        stats.peak_alloc_bytes as f64 / 1e6
    );
    Ok(())
}
