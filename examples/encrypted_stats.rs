//! Encrypted descriptive statistics: mean and variance of a private vector
//! using rotate-and-add folds — the MLaaS-style aggregate the paper's
//! introduction motivates, expressed through the `CkksEngine` session API.
//!
//! ```text
//! cargo run --release --example encrypted_stats
//! ```

use fideslib::{CkksEngine, Ct};

/// Rotate-and-add fold: every slot ends up holding Σ over `count` slots.
fn fold(ct: &Ct, count: usize) -> Result<Ct, Box<dyn std::error::Error>> {
    let mut acc = ct.clone();
    for k in 0..count.ilog2() {
        acc = acc.try_add(&acc.rotate(1 << k)?)?;
    }
    Ok(acc)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_values = 64usize;
    let shifts: Vec<i32> = (0..n_values.ilog2()).map(|k| 1 << k).collect();
    let engine = CkksEngine::builder()
        .log_n(12)
        .levels(6)
        .scale_bits(40)
        .rotations(&shifts)
        .seed(1)
        .build()?;

    // Private data: 64 "salaries".
    let data: Vec<f64> = (0..n_values)
        .map(|i| 0.3 + 0.4 * ((i as f64) * 0.71).sin())
        .collect();
    let mean_true = data.iter().sum::<f64>() / n_values as f64;
    let var_true = data
        .iter()
        .map(|x| (x - mean_true) * (x - mean_true))
        .sum::<f64>()
        / n_values as f64;

    let x = engine.encrypt(&data)?;

    // mean = fold(x) / n.
    let mean = fold(&x, n_values)? * (1.0 / n_values as f64);

    // E[x²]: square, fold, divide.
    let ex2 = fold(&x.try_square()?, n_values)? * (1.0 / n_values as f64);

    // var = E[x²] − mean² (operands auto-align levels).
    let var = &ex2 - &mean.try_square()?;

    let mean_got = engine.decrypt(&mean)?[0];
    let var_got = engine.decrypt(&var)?[0];

    println!("encrypted mean     = {mean_got:.6}   (true {mean_true:.6})");
    println!("encrypted variance = {var_got:.6}   (true {var_true:.6})");
    assert!((mean_got - mean_true).abs() < 1e-4);
    assert!((var_got - var_true).abs() < 1e-4);

    let t = engine.sync_time_us().expect("gpu-sim backend is timed");
    println!("\nsimulated GPU time for the whole pipeline: {t:.1} µs");
    Ok(())
}
