//! Encrypted descriptive statistics: mean and variance of a private vector
//! using rotate-and-add folds — the MLaaS-style aggregate the paper's
//! introduction motivates (a server computing over data it cannot read).
//!
//! ```text
//! cargo run --release --example encrypted_stats
//! ```

use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, fold_rotations, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let params = CkksParameters::new(12, 6, 40, 3)?;
    let ctx = CkksContext::new(params, gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 1);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);

    let n_values = 64usize;
    // The fold needs rotations by powers of two.
    let shifts: Vec<i32> = (0..n_values.ilog2()).map(|k| 1 << k).collect();
    let relin = kg.relinearization_key(&sk);
    let rots: Vec<_> = shifts.iter().map(|&k| (k, kg.rotation_key(&sk, k))).collect();
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rots, None);

    // Private data: 64 "salaries".
    let data: Vec<f64> = (0..n_values).map(|i| 0.3 + 0.4 * ((i as f64) * 0.71).sin()).collect();
    let mean_true = data.iter().sum::<f64>() / n_values as f64;
    let var_true =
        data.iter().map(|x| (x - mean_true) * (x - mean_true)).sum::<f64>() / n_values as f64;

    let mut rng = StdRng::seed_from_u64(2);
    let ct = adapter::load_ciphertext(
        &ctx,
        &client.encrypt(
            &client.encode_real(&data, ctx.fresh_scale(), ctx.max_level()),
            &pk,
            &mut rng,
        ),
    );

    // mean = fold(x) / n  — every slot ends up holding Σx.
    let folded = fold_rotations(&ct, 1, n_values.ilog2(), &keys)?;
    let mean_ct = folded.mul_scalar_rescale(1.0 / n_values as f64)?;

    // E[x²]: square, fold, divide.
    let mut sq = ct.square(&keys)?;
    sq.rescale_in_place()?;
    let folded_sq = fold_rotations(&sq, 1, n_values.ilog2(), &keys)?;
    let ex2_ct = folded_sq.mul_scalar_rescale(1.0 / n_values as f64)?;

    // var = E[x²] − mean²
    let mut mean_sq = mean_ct.square(&keys)?;
    mean_sq.rescale_in_place()?;
    let mut ex2_aligned = ex2_ct.duplicate();
    ex2_aligned.drop_to_level(mean_sq.level())?;
    let var_ct = ex2_aligned.sub(&mean_sq)?;

    let mean_got =
        client.decode_real(&client.decrypt(&adapter::store_ciphertext(&mean_ct), &sk))[0];
    let var_got =
        client.decode_real(&client.decrypt(&adapter::store_ciphertext(&var_ct), &sk))[0];

    println!("encrypted mean     = {mean_got:.6}   (true {mean_true:.6})");
    println!("encrypted variance = {var_got:.6}   (true {var_true:.6})");
    assert!((mean_got - mean_true).abs() < 1e-4);
    assert!((var_got - var_true).abs() < 1e-4);

    let t = ctx.gpu().sync();
    println!("\nsimulated GPU time for the whole pipeline: {:.1} µs", t);
    Ok(())
}
