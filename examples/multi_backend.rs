//! Multi-backend sessions: the same encrypted program on the simulated-GPU
//! pipeline and on the plain-CPU reference backend, with matching results.
//!
//! ```text
//! cargo run --release --example multi_backend
//! ```

use fideslib::{BackendChoice, CkksEngine};

fn run(backend: BackendChoice) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(5)
        .scale_bits(40)
        .rotations(&[1])
        .backend(backend)
        .seed(2026)
        .build()?;
    let xs: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin() * 0.5).collect();
    let ys: Vec<f64> = (0..16).map(|i| (i as f64 * 0.11).cos() * 0.5).collect();
    let (x, y) = (engine.encrypt(&xs)?, engine.encrypt(&ys)?);
    // (x·y + 2x − 0.25) rotated left by one.
    let z = (&x * &y + &x * 2.0 - 0.25).rotate(1)?;
    println!(
        "backend {:<14} → slot 0 = {:+.6}",
        engine.backend_name(),
        engine.decrypt(&z)?[0]
    );
    Ok(engine.decrypt(&z)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = run(BackendChoice::GpuSim)?;
    let cpu = run(BackendChoice::Cpu)?;
    let max_diff = gpu
        .iter()
        .zip(&cpu)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |gpu − cpu| over all slots: {max_diff:.2e}");
    assert!(max_diff < 1e-4, "backends must agree within CKKS precision");
    println!("backends agree ✓");
    Ok(())
}
