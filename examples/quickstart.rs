//! Quickstart: one `CkksEngine` session — encrypt, compute `x·y + 2x`
//! homomorphically on the simulated-GPU server, decrypt.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The raw layered API behind this (client contexts, key generation, the
//! adapter, manual rescaling) is shown in `examples/raw_layered.rs`; the
//! same computation on the CPU reference backend is in
//! `examples/multi_backend.rs`.

use fideslib::api::{DeviceSpec, ExecMode};
use fideslib::CkksEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = CkksEngine::builder()
        .log_n(12)
        .levels(6)
        .scale_bits(40)
        .device(DeviceSpec::rtx_4090())
        .exec_mode(ExecMode::Functional)
        .seed(42)
        .build()?;
    let xs: Vec<f64> = (0..8).map(|i| i as f64 / 10.0).collect();
    let ys: Vec<f64> = (0..8).map(|i| 1.0 - i as f64 / 20.0).collect();
    let (x, y) = (engine.encrypt(&xs)?, engine.encrypt(&ys)?);
    let result = &x * &y + &x * 2.0; // relinearize/rescale/align automatically
    let got = engine.decrypt(&result)?;
    for i in 0..8 {
        let expect = xs[i] * ys[i] + 2.0 * xs[i];
        println!("slot {i}: {expect:8.4} vs {:8.4}", got[i]);
        assert!((got[i] - expect).abs() < 1e-4);
    }
    println!("kernels: {}", engine.sim_stats().unwrap().kernel_launches);
    Ok(())
}
