//! Unbounded-depth encrypted logistic-regression training: the weight
//! ciphertext bootstraps automatically whenever the next iteration would
//! exhaust the modulus chain, so training runs **past the level budget**.
//!
//! On this 26-level chain one iteration costs 6 levels: 4 iterations fit,
//! the 5th (and every one after) exists only because of bootstrapping.
//!
//! cargo run --release --example lr_boot

use fides_api::{BackendChoice, BootstrapConfig, CkksEngine};
use fides_workloads::{BootstrappedLrTrainer, LrConfig};

fn main() -> fides_api::Result<()> {
    let cfg = LrConfig {
        batch: 4,
        features: 4,
        learning_rate: 1.0,
    };
    println!("Session: [logN, L, Δ, dnum] = [11, 26, 2^50, 3], CPU backend, bootstrapping on");
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(26)
        .scale_bits(50)
        .first_mod_bits(55)
        .dnum(3)
        .backend(BackendChoice::Cpu)
        .rotations(&cfg.required_rotations())
        .bootstrap_config(BootstrapConfig {
            slots: cfg.slots(),
            level_budget: (2, 2),
            k_range: 128.0,
            double_angles: 6,
            degree: 40,
        })
        .seed(42)
        .build()?;
    println!(
        "  bootstrap returns ciphertexts at level ≥ {} (one LR iteration costs {})",
        engine.min_bootstrap_level().unwrap(),
        fides_workloads::EngineLrTrainer::LEVELS_PER_ITERATION,
    );

    let trainer = BootstrappedLrTrainer::new(&engine, cfg)?;
    // A linearly separable toy batch.
    let xs: Vec<Vec<f64>> = vec![
        vec![0.30, 0.10, -0.05, 0.20],
        vec![-0.25, -0.10, 0.10, -0.30],
        vec![0.20, 0.25, 0.05, 0.15],
        vec![-0.15, -0.30, -0.10, -0.20],
    ];
    let ys = vec![1.0, 0.0, 1.0, 0.0];
    let row_refs: Vec<&[f64]> = xs.iter().map(|r| r.as_slice()).collect();
    let x = trainer.trainer().encrypt_features(&row_refs)?;
    let y = trainer.trainer().encrypt_labels(&ys)?;
    let mut w = trainer
        .trainer()
        .encrypt_weights(&vec![0.0; cfg.features])?;

    let iters = 6usize;
    println!("training {iters} encrypted iterations (plain chain caps out at 4)...");
    let stats;
    (w, stats) = trainer.train(&w, &x, &y, iters)?;
    println!(
        "  ran {} iterations with {} bootstraps, final weight level {}",
        stats.iterations,
        stats.bootstraps,
        w.level()
    );
    assert!(stats.bootstraps >= 1, "must have refreshed at least once");

    let weights = trainer.trainer().decrypt_weights(&w)?;
    println!("  decrypted weights: {weights:.4?}");
    // Positive-label rows should score higher than negative ones.
    let score = |row: &[f64]| -> f64 { row.iter().zip(&weights).map(|(a, b)| a * b).sum() };
    let pos = (score(&xs[0]) + score(&xs[2])) / 2.0;
    let neg = (score(&xs[1]) + score(&xs[3])) / 2.0;
    println!("  mean score: label-1 rows {pos:.4} vs label-0 rows {neg:.4}");
    assert!(pos > neg, "training must separate the classes");
    println!("ok: encrypted training ran past the chain's level budget");
    Ok(())
}
