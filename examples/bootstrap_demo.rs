//! Bootstrapping demo: refresh an exhausted ciphertext (§III-F.7) at
//! functional scale, report precision, regained depth and the simulated GPU
//! cost of each run.
//!
//! ```text
//! cargo run --release --example bootstrap_demo
//! ```

use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, BootstrapConfig, Bootstrapper, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Setting up [logN, L, Δ, dnum] = [11, 20, 50, 3] with bootstrapping keys...");
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let ctx = CkksContext::new(CkksParameters::toy_boot(), gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 5);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);

    let slots = 8usize;
    let boot = Bootstrapper::new(&ctx, &client, BootstrapConfig::for_slots(slots))?;
    let relin = kg.relinearization_key(&sk);
    let rots: Vec<_> =
        boot.required_rotations().iter().map(|&k| (k, kg.rotation_key(&sk, k))).collect();
    let conj = kg.conjugation_key(&sk);
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rots, Some(&conj));
    println!(
        "  {} rotation keys, output level ≥ {}",
        keys.loaded_rotations().len(),
        boot.min_output_level()
    );

    let values: Vec<f64> = (0..slots).map(|i| 0.4 * ((i as f64) * 1.3).sin()).collect();
    let mut rng = StdRng::seed_from_u64(6);
    let mut ct = adapter::load_ciphertext(
        &ctx,
        &client.encrypt(
            &client.encode_real(&values, ctx.standard_scale(ctx.max_level()), ctx.max_level()),
            &pk,
            &mut rng,
        ),
    );

    // Exhaust the multiplicative budget.
    ct.drop_to_level(0)?;
    println!("\nciphertext exhausted: level {} (no multiplications possible)", ct.level());

    let t0 = ctx.gpu().sync();
    let refreshed = boot.bootstrap(&ct, &keys)?;
    let dt = ctx.gpu().sync() - t0;

    let got = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&refreshed), &sk));
    println!("bootstrapped: level {} | simulated GPU time {:.2} ms", refreshed.level(), dt / 1e3);
    println!("\nslot | original | refreshed | error");
    let mut max_err = 0.0f64;
    for i in 0..slots {
        let err = (got[i] - values[i]).abs();
        max_err = max_err.max(err);
        println!("{i:4} | {:8.5} | {:9.5} | {err:.2e}", values[i], got[i]);
    }
    println!("\nmax error: {max_err:.2e}");
    assert!(max_err < 0.02, "bootstrap must preserve the message");

    // The refreshed ciphertext can compute again.
    let mut sq = refreshed.square(&keys)?;
    sq.rescale_in_place()?;
    let sq_got = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&sq), &sk));
    println!("squared after refresh: slot 1 = {:.5} (expect {:.5})", sq_got[1], values[1] * values[1]);
    Ok(())
}
