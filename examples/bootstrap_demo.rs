//! Bootstrapping demo: refresh an exhausted ciphertext (§III-F.7) at
//! functional scale through the `CkksEngine` session API — the builder
//! generates every DFT/Chebyshev table and rotation key the pipeline needs.
//!
//! ```text
//! cargo run --release --example bootstrap_demo
//! ```

use fideslib::CkksEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Setting up [logN, L, Δ, dnum] = [11, 20, 50, 3] with bootstrapping keys...");
    let slots = 8usize;
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(20)
        .scale_bits(50)
        .first_mod_bits(55)
        .dnum(3)
        .bootstrap_slots(slots)
        .seed(5)
        .build()?;
    println!(
        "  bootstrap output level ≥ {}",
        engine.min_bootstrap_level().unwrap()
    );

    let values: Vec<f64> = (0..slots).map(|i| 0.4 * ((i as f64) * 1.3).sin()).collect();
    let fresh = engine.encrypt(&values)?;

    // Exhaust the multiplicative budget.
    let exhausted = fresh.at_level(0)?;
    println!(
        "\nciphertext exhausted: level {} (no multiplications possible)",
        exhausted.level()
    );

    let t0 = engine.sync_time_us().unwrap();
    let refreshed = exhausted.bootstrap()?;
    let dt = engine.sync_time_us().unwrap() - t0;

    let got = engine.decrypt(&refreshed)?;
    println!(
        "bootstrapped: level {} | simulated GPU time {:.2} ms",
        refreshed.level(),
        dt / 1e3
    );
    println!("\nslot | original | refreshed | error");
    let mut max_err = 0.0f64;
    for i in 0..slots {
        let err = (got[i] - values[i]).abs();
        max_err = max_err.max(err);
        println!("{i:4} | {:8.5} | {:9.5} | {err:.2e}", values[i], got[i]);
    }
    println!("\nmax error: {max_err:.2e}");
    assert!(max_err < 0.02, "bootstrap must preserve the message");

    // The refreshed ciphertext can compute again.
    let sq = refreshed.try_square()?;
    let sq_got = engine.decrypt(&sq)?;
    println!(
        "squared after refresh: slot 1 = {:.5} (expect {:.5})",
        sq_got[1],
        values[1] * values[1]
    );
    Ok(())
}
