//! Encrypted logistic-regression training (the paper's §IV-B workload) at
//! functional scale through the `CkksEngine` session API: trains on the
//! synthetic loan dataset, compares the encrypted model against the
//! plaintext reference, and reports simulated GPU timings per iteration.
//!
//! ```text
//! cargo run --release --example logistic_regression
//! ```

use fideslib::workloads::{EngineLrTrainer, LoanDataset, LrConfig};
use fideslib::CkksEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = LrConfig {
        batch: 16,
        features: 8,
        learning_rate: 2.0,
    };
    // 14 levels: two encrypted iterations without bootstrapping.
    let engine = CkksEngine::builder()
        .log_n(10)
        .levels(14)
        .scale_bits(40)
        .dnum(2)
        .rotations(&cfg.required_rotations())
        .seed(9)
        .build()?;
    let trainer = EngineLrTrainer::new(&engine, cfg)?;

    let data = LoanDataset::generate(256, 6, 8, 2026);
    println!(
        "dataset: {} samples × {} features (padded), planted-model accuracy {:.3}",
        data.len(),
        data.padded_features(),
        data.accuracy(&{
            let mut w = data.true_weights.clone();
            w.resize(8, 0.0);
            w
        })
    );

    let mut w_plain = vec![0.0f64; 8];
    let mut w_ct = trainer.encrypt_weights(&w_plain)?;

    for it in 0..2 {
        let (rows, labels) = data.batch(it * cfg.batch, cfg.batch);
        let x = trainer.encrypt_features(&rows)?;
        let y = trainer.encrypt_labels(&labels)?;
        let t0 = engine.sync_time_us().unwrap();
        w_ct = trainer.iteration(&w_ct, &x, &y)?;
        let dt = engine.sync_time_us().unwrap() - t0;
        w_plain = cfg.iteration_plain(&w_plain, &rows, &labels);
        println!(
            "iteration {}: level {} → simulated GPU time {:.2} ms",
            it + 1,
            w_ct.level(),
            dt / 1e3
        );
    }

    let w_enc = trainer.decrypt_weights(&w_ct)?;
    println!("\nfeature | encrypted w | plaintext w");
    for j in 0..8 {
        println!("{j:7} | {:11.6} | {:11.6}", w_enc[j], w_plain[j]);
        assert!((w_enc[j] - w_plain[j]).abs() < 0.02);
    }
    println!(
        "\naccuracy: encrypted model {:.3}, plaintext model {:.3}",
        data.accuracy(&w_enc),
        data.accuracy(&w_plain)
    );
    Ok(())
}
