//! Encrypted logistic-regression training (the paper's §IV-B workload) at
//! functional scale: trains on the synthetic loan dataset, compares the
//! encrypted model against the plaintext reference, and reports simulated
//! GPU timings per iteration.
//!
//! ```text
//! cargo run --release --example logistic_regression
//! ```

use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fides_workloads::{LoanDataset, LrConfig, LrTrainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    // 14 levels: two encrypted iterations without bootstrapping.
    let params = CkksParameters::new(10, 14, 40, 2)?;
    let ctx = CkksContext::new(params, gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 9);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);

    let cfg = LrConfig { batch: 16, features: 8, learning_rate: 2.0 };
    let trainer = LrTrainer::new(&ctx, &client, cfg);
    let relin = kg.relinearization_key(&sk);
    let rots: Vec<_> =
        trainer.required_rotations().iter().map(|&k| (k, kg.rotation_key(&sk, k))).collect();
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rots, None);

    let data = LoanDataset::generate(256, 6, 8, 2026);
    println!(
        "dataset: {} samples × {} features (padded), planted-model accuracy {:.3}",
        data.len(),
        data.padded_features(),
        data.accuracy(&{
            let mut w = data.true_weights.clone();
            w.resize(8, 0.0);
            w
        })
    );

    let mut rng = StdRng::seed_from_u64(10);
    let mut encrypt = |slots: &[f64]| {
        let pt = client.encode_real(slots, ctx.standard_scale(ctx.max_level()), ctx.max_level());
        adapter::load_ciphertext(&ctx, &client.encrypt(&pt, &pk, &mut rng))
    };

    let mut w_plain = vec![0.0f64; 8];
    let mut w_ct = encrypt(&trainer.pack_weights(&w_plain));

    for it in 0..2 {
        let (rows, labels) = data.batch(it * cfg.batch, cfg.batch);
        let x = encrypt(&trainer.pack_features(&rows));
        let y = encrypt(&trainer.pack_labels(&labels));
        let t0 = ctx.gpu().sync();
        w_ct = trainer.iteration(&w_ct, &x, &y, &keys)?;
        let dt = ctx.gpu().sync() - t0;
        w_plain = trainer.iteration_plain(&w_plain, &rows, &labels);
        println!(
            "iteration {}: level {} → simulated GPU time {:.2} ms",
            it + 1,
            w_ct.level(),
            dt / 1e3
        );
    }

    let w_enc = trainer
        .unpack_weights(&client.decode_real(&client.decrypt(&adapter::store_ciphertext(&w_ct), &sk)));
    println!("\nfeature | encrypted w | plaintext w");
    for j in 0..8 {
        println!("{j:7} | {:11.6} | {:11.6}", w_enc[j], w_plain[j]);
        assert!((w_enc[j] - w_plain[j]).abs() < 0.02);
    }
    println!(
        "\naccuracy: encrypted model {:.3}, plaintext model {:.3}",
        data.accuracy(&w_enc),
        data.accuracy(&w_plain)
    );
    Ok(())
}
