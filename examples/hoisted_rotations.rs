//! Hoisted rotations (§III-F.6): when several rotations of one ciphertext
//! are needed (the BSGS baby steps of CoeffToSlot, for example), the
//! decomposition + ModUp of `c₁` can be done once and shared —
//! `Ct::rotate_many` versus one `Ct::rotate` per shift. This example
//! verifies the results match and compares simulated GPU cost.
//!
//! ```text
//! cargo run --release --example hoisted_rotations
//! ```

use fideslib::CkksEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shifts: Vec<i32> = vec![1, 2, 3, 5, 8, 13];
    let engine = CkksEngine::builder()
        .log_n(12)
        .levels(8)
        .scale_bits(40)
        .rotations(&shifts)
        .seed(3)
        .build()?;

    let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let ct = engine.encrypt(&data)?;

    // Naive: one full key switch per rotation.
    let t0 = engine.sync_time_us().unwrap();
    let naive: Vec<_> = shifts.iter().map(|&k| ct.rotate(k).unwrap()).collect();
    let naive_us = engine.sync_time_us().unwrap() - t0;

    // Hoisted: ModUp once, then per-rotation permutation + inner product.
    let t0 = engine.sync_time_us().unwrap();
    let hoisted = ct.rotate_many(&shifts)?;
    let hoisted_us = engine.sync_time_us().unwrap() - t0;

    for (i, &k) in shifts.iter().enumerate() {
        let a = engine.decrypt(&naive[i])?;
        let b = engine.decrypt(&hoisted[i])?;
        for (x, y) in a.iter().zip(&b).take(32) {
            assert!((x - y).abs() < 1e-4, "hoisted/naive mismatch at shift {k}");
        }
        println!(
            "shift {k:2}: slot0 naive = {:7.3}, hoisted = {:7.3}",
            a[0], b[0]
        );
    }

    println!("\nsimulated GPU time for {} rotations:", shifts.len());
    println!("  naive   : {naive_us:9.1} µs");
    println!(
        "  hoisted : {hoisted_us:9.1} µs  ({:.2}x faster)",
        naive_us / hoisted_us
    );
    assert!(
        hoisted_us < naive_us,
        "hoisting must win for multiple rotations"
    );
    Ok(())
}
