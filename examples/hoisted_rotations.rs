//! Hoisted rotations (§III-F.6): when several rotations of one ciphertext
//! are needed (the BSGS baby steps of CoeffToSlot, for example), the
//! decomposition + ModUp of `c₁` can be done once and shared. This example
//! verifies the results match naive rotations and compares simulated GPU
//! cost.
//!
//! ```text
//! cargo run --release --example hoisted_rotations
//! ```

use fides_client::{ClientContext, KeyGenerator};
use fides_core::{adapter, CkksContext, CkksParameters};
use fides_gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let params = CkksParameters::new(12, 8, 40, 3)?;
    let ctx = CkksContext::new(params, gpu);
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 3);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);

    let shifts: Vec<i32> = vec![1, 2, 3, 5, 8, 13];
    let relin = kg.relinearization_key(&sk);
    let rots: Vec<_> = shifts.iter().map(|&k| (k, kg.rotation_key(&sk, k))).collect();
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &rots, None);

    let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let mut rng = StdRng::seed_from_u64(4);
    let ct = adapter::load_ciphertext(
        &ctx,
        &client.encrypt(
            &client.encode_real(&data, ctx.fresh_scale(), ctx.max_level()),
            &pk,
            &mut rng,
        ),
    );

    // Naive: one full key switch per rotation.
    let t0 = ctx.gpu().sync();
    let naive: Vec<_> = shifts.iter().map(|&k| ct.rotate(k, &keys).unwrap()).collect();
    let naive_us = ctx.gpu().sync() - t0;

    // Hoisted: ModUp once, then per-rotation permutation + inner product.
    let t0 = ctx.gpu().sync();
    let hoisted = ct.hoisted_rotations(&shifts, &keys)?;
    let hoisted_us = ctx.gpu().sync() - t0;

    for (i, &k) in shifts.iter().enumerate() {
        let a = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&naive[i]), &sk));
        let b =
            client.decode_real(&client.decrypt(&adapter::store_ciphertext(&hoisted[i]), &sk));
        for (x, y) in a.iter().zip(&b).take(32) {
            assert!((x - y).abs() < 1e-4, "hoisted/naive mismatch at shift {k}");
        }
        println!("shift {k:2}: slot0 naive = {:7.3}, hoisted = {:7.3}", a[0], b[0]);
    }

    println!("\nsimulated GPU time for {} rotations:", shifts.len());
    println!("  naive   : {naive_us:9.1} µs");
    println!("  hoisted : {hoisted_us:9.1} µs  ({:.2}x faster)", naive_us / hoisted_us);
    assert!(hoisted_us < naive_us, "hoisting must win for multiple rotations");
    Ok(())
}
