//! Cross-backend bootstrapping: the backend-generic pipeline must produce
//! **bit-identical** refreshed ciphertexts on the simulated-GPU backend and
//! the CPU reference backend at every worker count, and the refreshed
//! ciphertexts must carry real computing depth (≥ 2 further multiplications
//! within CKKS precision).

use fides_api::{BackendChoice, CkksEngine, Ct};

const SLOTS: usize = 8;

fn engine(backend: BackendChoice, workers: usize) -> CkksEngine {
    CkksEngine::builder()
        .log_n(11)
        .levels(20)
        .scale_bits(50)
        .first_mod_bits(55)
        .dnum(3)
        .backend(backend)
        .workers(workers)
        .bootstrap_slots(SLOTS)
        .seed(0xb007)
        .build()
        .expect("bootstrap parameters are valid")
}

fn values() -> Vec<f64> {
    (0..SLOTS)
        .map(|i| 0.25 * ((i as f64) * 0.7).cos())
        .collect()
}

/// Encrypt at the lowest usable level, bootstrap, square twice.
fn boot_and_compute(e: &CkksEngine) -> (Ct, Ct) {
    let exhausted = e.encrypt_at(&values(), 0).unwrap();
    let refreshed = e.bootstrap(&exhausted).unwrap();
    assert!(
        refreshed.level() >= e.min_bootstrap_level().unwrap(),
        "refreshed level {} below promised {}",
        refreshed.level(),
        e.min_bootstrap_level().unwrap()
    );
    assert!(refreshed.level() >= 2, "need depth for 2 multiplications");
    let sq = refreshed.try_square().unwrap();
    let sq2 = sq.try_square().unwrap();
    (refreshed, sq2)
}

fn assert_frames_equal(a: &Ct, b: &Ct, what: &str) {
    let fa = a.to_raw().unwrap();
    let fb = b.to_raw().unwrap();
    assert_eq!(fa.level, fb.level, "{what}: level");
    assert_eq!(fa.c0.limbs, fb.c0.limbs, "{what}: c0 limbs diverged");
    assert_eq!(fa.c1.limbs, fb.c1.limbs, "{what}: c1 limbs diverged");
}

/// The acceptance criterion in one test: round-trip precision after
/// bootstrap + 2 multiplications, bit-identical across gpu-sim and the CPU
/// backend at worker counts 1 and 8.
#[test]
fn bootstrap_bit_identical_across_backends_and_workers() {
    let gpu = engine(BackendChoice::GpuSim, 1);
    let (gpu_boot, gpu_sq2) = boot_and_compute(&gpu);

    // Precision: v⁴ recovered to better than 2⁻¹⁰ per slot.
    let got = gpu.decrypt(&gpu_sq2).unwrap();
    for (i, (v, g)) in values().iter().zip(&got).enumerate() {
        let expect = v * v * v * v;
        assert!(
            (g - expect).abs() < 2f64.powi(-10),
            "slot {i}: {g} vs {expect} (err {:.2e})",
            (g - expect).abs()
        );
    }

    for workers in [1usize, 8] {
        let cpu = engine(BackendChoice::Cpu, workers);
        let (cpu_boot, cpu_sq2) = boot_and_compute(&cpu);
        assert_frames_equal(
            &gpu_boot,
            &cpu_boot,
            &format!("bootstrap gpu-sim vs cpu({workers})"),
        );
        assert_frames_equal(
            &gpu_sq2,
            &cpu_sq2,
            &format!("bootstrap+2 mults gpu-sim vs cpu({workers})"),
        );
    }
}

/// Messages survive the full round trip on the CPU backend alone (the
/// backend the paper's baselines run on), including scale restoration.
#[test]
fn cpu_bootstrap_roundtrip_preserves_message() {
    let e = engine(BackendChoice::Cpu, 0);
    let exhausted = e.encrypt_at(&values(), 0).unwrap();
    let refreshed = e.bootstrap(&exhausted).unwrap();
    let got = e.decrypt(&refreshed).unwrap();
    for (i, (v, g)) in values().iter().zip(&got).enumerate() {
        assert!(
            (v - g).abs() < 2f64.powi(-10),
            "slot {i}: {g} vs {v} (err {:.2e})",
            (v - g).abs()
        );
    }
}
