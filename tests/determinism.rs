//! Determinism under parallelism: the stream-graph engine and the
//! limb-parallel CPU worker pool must never change ciphertext *bits*.
//!
//! Three invariants, property-tested over random seeds and circuits built
//! from the operations whose schedules actually differ between execution
//! substrates (rotate = automorphism + key switch, HMult = tensor + key
//! switch, rescale = cross-limb sync):
//!
//! 1. the CPU backend is bit-identical at worker counts 1 and 8;
//! 2. the simulated-GPU backend (functional mode, graph execution on) is
//!    bit-identical to the CPU backend at every worker count;
//! 3. graph execution and eager dispatch are bit-identical on the
//!    simulated-GPU backend.

use fideslib::{BackendChoice, CkksEngine, Ct};
use proptest::prelude::*;

fn engine(backend: BackendChoice, workers: usize, graph: bool, seed: u64) -> CkksEngine {
    CkksEngine::builder()
        .log_n(10)
        .levels(4)
        .scale_bits(40)
        .dnum(2)
        .backend(backend)
        .workers(workers)
        .graph_exec(graph)
        .rotations(&[1, 2, -1])
        .seed(seed)
        .build()
        .expect("test parameters are valid")
}

/// Deterministic pseudo-random message in `[-1, 1]`.
fn message(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2001) as f64 / 1000.0 - 1.0
        })
        .collect()
}

/// The determinism circuit: keyswitch-heavy (HMult + three rotations),
/// with a rescale (the engine policy rescales after try_mul) and additive
/// glue — every schedule-sensitive path in one expression.
fn circuit(e: &CkksEngine, seed: u64, pick: u8) -> Ct {
    let xs = message(seed, 16);
    let ys = message(seed.wrapping_mul(31).wrapping_add(7), 16);
    let x = e.encrypt(&xs).unwrap();
    let y = e.encrypt(&ys).unwrap();
    match pick % 3 {
        // rotate-chain: hoists nothing, three key switches
        0 => {
            let r = x.rotate(1).unwrap();
            let r = r.rotate(2).unwrap();
            r.rotate(-1).unwrap().try_add(&y).unwrap()
        }
        // mult + rescale + rotate
        1 => {
            let z = x.try_mul(&y).unwrap();
            z.rotate(1).unwrap()
        }
        // mixed: square, align, subtract
        _ => {
            let sq = x.try_square().unwrap();
            let shifted = y.rotate(2).unwrap();
            sq.try_sub(&shifted).unwrap()
        }
    }
}

/// Wire-format frames must match bit for bit.
fn assert_frames_equal(a: &Ct, b: &Ct, what: &str) {
    let fa = a.to_raw().unwrap();
    let fb = b.to_raw().unwrap();
    assert_eq!(fa.level, fb.level, "{what}: level");
    assert_eq!(fa.c0.limbs, fb.c0.limbs, "{what}: c0 limbs diverged");
    assert_eq!(fa.c1.limbs, fb.c1.limbs, "{what}: c1 limbs diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// CPU backend: worker counts 1 and 8 produce identical bits — the
    /// worker split assigns limbs to disjoint output slots, so the pool is
    /// invisible to the math.
    #[test]
    fn cpu_workers_bit_identical(seed in any::<u64>(), pick in any::<u8>()) {
        let w1 = circuit(&engine(BackendChoice::Cpu, 1, true, seed), seed, pick);
        let w8 = circuit(&engine(BackendChoice::Cpu, 8, true, seed), seed, pick);
        assert_frames_equal(&w1, &w8, "cpu workers 1 vs 8");
    }

    /// Cross-backend: the simulated GPU (stream-graph execution) and the
    /// parallel CPU backend agree bit for bit at any worker count.
    #[test]
    fn gpu_sim_matches_cpu_bitwise(seed in any::<u64>(), pick in any::<u8>()) {
        let gpu = circuit(&engine(BackendChoice::GpuSim, 1, true, seed), seed, pick);
        for workers in [1usize, 8] {
            let cpu = circuit(&engine(BackendChoice::Cpu, workers, true, seed), seed, pick);
            assert_frames_equal(&gpu, &cpu, &format!("gpu-sim vs cpu({workers})"));
        }
    }

    /// Graph execution vs eager dispatch: recording + planned replay never
    /// touches ciphertext data.
    #[test]
    fn graph_exec_matches_eager_bitwise(seed in any::<u64>(), pick in any::<u8>()) {
        let lazy = circuit(&engine(BackendChoice::GpuSim, 1, true, seed), seed, pick);
        let eager = circuit(&engine(BackendChoice::GpuSim, 1, false, seed), seed, pick);
        assert_frames_equal(&lazy, &eager, "graph vs eager");
    }
}

/// Scheduler v2 (dependency-aware list scheduling + plan cache + memory
/// liveness) vs the v1 modulo remap: planning only ever changes replayed
/// timing, never ciphertext bits — across every circuit shape and on both
/// backends.
#[test]
fn sched_v2_on_off_bit_identical() {
    for pick in 0..3u8 {
        for seed in [7u64, 1234, 987654321] {
            let v2 = circuit(&engine(BackendChoice::GpuSim, 1, true, seed), seed, pick);
            let v1_engine = CkksEngine::builder()
                .log_n(10)
                .levels(4)
                .scale_bits(40)
                .dnum(2)
                .backend(BackendChoice::GpuSim)
                .graph_exec(true)
                .sched_v2(false)
                .rotations(&[1, 2, -1])
                .seed(seed)
                .build()
                .expect("test parameters are valid");
            let v1 = circuit(&v1_engine, seed, pick);
            assert_frames_equal(&v2, &v1, &format!("sched v2 vs v1 (pick {pick})"));
            // And the CPU reference agrees with both.
            let cpu = circuit(&engine(BackendChoice::Cpu, 8, true, seed), seed, pick);
            assert_frames_equal(&v2, &cpu, &format!("sched v2 vs cpu (pick {pick})"));
        }
    }
}

/// The `u64x4` SIMD slabs vs the scalar limb loops: the lane kernels use
/// the same reduction algorithm per lane (branchless conditional-subtract
/// rewrites are exact), so flipping the kill-switch must never change
/// ciphertext bits — across circuit shapes, both backends, and worker
/// counts 1 and 8 (slab dispatch composes with the limb-parallel pool).
/// Without the `simd` cargo feature both states run the scalar path and
/// the test degenerates to trivially-true, which is the intended contract.
#[test]
fn simd_on_off_bit_identical() {
    let run = |simd: bool, backend: BackendChoice, workers: usize, seed: u64, pick: u8| {
        fideslib::set_simd_enabled(Some(simd));
        circuit(&engine(backend, workers, true, seed), seed, pick)
    };
    for pick in 0..3u8 {
        for seed in [7u64, 1234, 987654321] {
            for backend in [BackendChoice::Cpu, BackendChoice::GpuSim] {
                for workers in [1usize, 8] {
                    let off = run(false, backend, workers, seed, pick);
                    let on = run(true, backend, workers, seed, pick);
                    assert_frames_equal(
                        &off,
                        &on,
                        &format!("simd off vs on ({backend:?}, workers {workers}, pick {pick})"),
                    );
                }
            }
        }
    }
    fideslib::set_simd_enabled(None);
}

/// Repeating an evaluation on one engine replays cached plans (same graph
/// shape, fresh device buffers rebound into the plan) — results must not
/// drift between the planned run and the cached-replay run.
#[test]
fn plan_cache_replay_bit_identical() {
    let e = engine(BackendChoice::GpuSim, 1, true, 55);
    let x = e.encrypt(&message(55, 16)).unwrap();
    let y = e.encrypt(&message(56, 16)).unwrap();
    let first = x.try_mul(&y).unwrap().rotate(1).unwrap();
    let second = x.try_mul(&y).unwrap().rotate(1).unwrap();
    assert_frames_equal(&first, &second, "cached-plan replay");
}

/// `eval_batch` (one graph across a whole batch) is also bit-identical to
/// op-by-op evaluation.
#[test]
fn eval_batch_bit_identical_to_sequential() {
    let e = engine(BackendChoice::GpuSim, 1, true, 123);
    let cts: Vec<Ct> = (0..4)
        .map(|i| e.encrypt(&message(100 + i, 16)).unwrap())
        .collect();
    let batched = e.eval_batch(&cts, |ct| ct.rotate(1)).unwrap();
    for (ct, b) in cts.iter().zip(&batched) {
        let seq = ct.rotate(1).unwrap();
        assert_frames_equal(&seq, b, "eval_batch vs sequential");
    }
}
