//! End-to-end workspace integration: the complete client → wire → server →
//! wire → client pipeline over a multi-operation encrypted program.

use fideslib::client::{ClientContext, KeyGenerator, RawCiphertext};
use fideslib::core::{adapter, CkksContext, CkksParameters};
use fideslib::gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An "MLaaS request": the client ships serialized ciphertexts; the server
/// evaluates a small polynomial pipeline; the client decrypts the reply.
#[test]
fn serialized_round_trip_program() {
    // Server side.
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let params = CkksParameters::new(11, 8, 45, 3).unwrap();
    let ctx = CkksContext::new(params, gpu);

    // Client side.
    let client = ClientContext::new(ctx.raw_params().clone());
    let mut kg = KeyGenerator::new(&client, 2026);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let rot1 = kg.rotation_key(&sk, 1);
    let keys = adapter::load_eval_keys(&ctx, Some(&relin), &[(1, rot1)], None);

    let data: Vec<f64> = (0..32).map(|i| (i as f64 / 32.0) - 0.5).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let ct = client.encrypt(
        &client.encode_real(&data, ctx.fresh_scale(), ctx.max_level()),
        &pk,
        &mut rng,
    );

    // Wire: serialize → deserialize (the client/server boundary).
    let wire = ct.to_bytes();
    assert!(wire.len() > 32 * 1024, "9 limbs × 2 polys × 2 KiB each");
    let received = RawCiphertext::from_bytes(&wire).unwrap();

    // Server program: y = (x² + 0.25) rotated left by one.
    let x = adapter::load_ciphertext(&ctx, &received);
    let mut sq = x.square(&keys).unwrap();
    sq.rescale_in_place().unwrap();
    let shifted = sq.add_scalar(0.25);
    let rotated = shifted.rotate(1, &keys).unwrap();

    // Wire back.
    let reply = adapter::store_ciphertext(&rotated);
    let reply = RawCiphertext::from_bytes(&reply.to_bytes()).unwrap();
    assert!(reply.noise_log2 > 0.0, "noise estimate travels with the ciphertext");

    let got = client.decode_real(&client.decrypt(&reply, &sk));
    for i in 0..32 {
        let src = data[(i + 1) % 32];
        let expect = src * src + 0.25;
        assert!((got[i] - expect).abs() < 1e-4, "slot {i}: {} vs {expect}", got[i]);
    }
}

/// The cost-only execution mode must produce exactly the same kernel
/// schedule (and therefore timing) as functional mode — the data-oblivious
/// property DESIGN.md's full-scale benchmarks rely on.
#[test]
fn cost_only_schedule_matches_functional() {
    let params = CkksParameters::toy();
    // Real client material so the functional run has data to chew on; the
    // cost-only run ignores the contents but must produce the same schedule.
    let raw = params.to_raw();
    let client = ClientContext::new(raw.clone());
    let mut kg = KeyGenerator::new(&client, 11);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let rot1 = kg.rotation_key(&sk, 1);
    let rot2 = kg.rotation_key(&sk, 2);
    let mut rng = StdRng::seed_from_u64(12);
    let data: Vec<f64> = (0..16).map(|i| i as f64 * 0.01).collect();
    let raw_ct = client.encrypt(
        &client.encode_real(&data, client.params().scale(), raw.max_level()),
        &pk,
        &mut rng,
    );

    let run = |mode: ExecMode| {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), mode);
        let ctx = CkksContext::new(params.clone(), std::sync::Arc::clone(&gpu));
        let keys = adapter::load_eval_keys(
            &ctx,
            Some(&relin),
            &[(1, rot1.clone()), (2, rot2.clone())],
            None,
        );
        let ct = adapter::load_ciphertext(&ctx, &raw_ct);
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
        let rot = prod.rotate(2, &keys).unwrap();
        let _ = rot.add(&prod.rotate(1, &keys).unwrap()).unwrap();
        let elapsed = gpu.sync();
        let stats = gpu.stats();
        (
            elapsed,
            stats.kernel_launches,
            stats.dram_read_bytes,
            stats.l2_hit_bytes,
            stats.write_bytes,
            stats.int32_ops,
        )
    };
    let functional = run(ExecMode::Functional);
    let cost_only = run(ExecMode::CostOnly);
    assert_eq!(functional, cost_only, "kernel schedule must be data-oblivious");
}

/// Device-memory accounting through a whole program: everything allocated on
/// the simulated device is released when the objects drop.
#[test]
fn device_memory_is_reclaimed() {
    let gpu = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::CostOnly);
    let baseline = {
        let ctx = CkksContext::new(CkksParameters::toy(), std::sync::Arc::clone(&gpu));
        let keys = fideslib::baselines::synth_keys(&ctx);
        let ct = adapter::placeholder_ciphertext(
            &ctx,
            ctx.max_level(),
            ctx.fresh_scale(),
            ctx.n() / 2,
        );
        let before = gpu.stats().current_alloc_bytes;
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
        drop(prod);
        let after = gpu.stats().current_alloc_bytes;
        assert_eq!(before, after, "operation temporaries must be freed");
        gpu.stats().current_alloc_bytes
    };
    // Context, keys and ciphertexts dropped: only permutation-table caches
    // remain inside the dropped context... which is gone too.
    assert!(gpu.stats().current_alloc_bytes <= baseline);
    assert!(gpu.stats().peak_alloc_bytes > 0);
}

/// Cross-parameter-set isolation: two contexts with different parameters can
/// run in one process (the Rust port removes the paper's singleton
/// limitation).
#[test]
fn multiple_contexts_coexist() {
    let gpu_a = GpuSim::new(DeviceSpec::rtx_4090(), ExecMode::Functional);
    let gpu_b = GpuSim::new(DeviceSpec::v100(), ExecMode::Functional);
    let ctx_a = CkksContext::new(CkksParameters::toy(), gpu_a);
    let ctx_b = CkksContext::new(CkksParameters::new(11, 3, 42, 2).unwrap(), gpu_b);

    for ctx in [&ctx_a, &ctx_b] {
        let client = ClientContext::new(ctx.raw_params().clone());
        let mut kg = KeyGenerator::new(&client, 3);
        let sk = kg.secret_key();
        let pk = kg.public_key(&sk);
        let mut rng = StdRng::seed_from_u64(4);
        let v = vec![0.5f64, -0.25];
        let ct = adapter::load_ciphertext(
            &ctx.clone(),
            &client.encrypt(
                &client.encode_real(&v, ctx.fresh_scale(), ctx.max_level()),
                &pk,
                &mut rng,
            ),
        );
        let doubled = ct.mul_int(2);
        let got = client.decode_real(&client.decrypt(&adapter::store_ciphertext(&doubled), &sk));
        assert!((got[0] - 1.0).abs() < 1e-5);
        assert!((got[1] + 0.5).abs() < 1e-5);
    }
}
