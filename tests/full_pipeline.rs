//! End-to-end workspace integration: the complete client → wire → server →
//! wire → client pipeline over a multi-operation encrypted program, driven
//! through the `CkksEngine` session API (with the raw layered API exercised
//! where the test is specifically about the layer boundary).

use fideslib::client::{ClientContext, KeyGenerator, RawCiphertext};
use fideslib::core::{adapter, CkksContext, CkksParameters};
use fideslib::gpu_sim::{DeviceSpec, ExecMode, GpuSim};
use fideslib::CkksEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An "MLaaS request" through the session API: encrypt, serialize across the
/// wire, evaluate a small polynomial pipeline server-side, reply, decrypt.
#[test]
fn serialized_round_trip_program() {
    let engine = CkksEngine::builder()
        .log_n(11)
        .levels(8)
        .scale_bits(45)
        .dnum(3)
        .rotations(&[1])
        .seed(2026)
        .build()
        .unwrap();

    let data: Vec<f64> = (0..32).map(|i| (i as f64 / 32.0) - 0.5).collect();
    let ct = engine.encrypt(&data).unwrap();

    // Wire: serialize → deserialize (the client/server boundary).
    let wire = engine.backend().store(ct.backend_ct()).unwrap().to_bytes();
    assert!(wire.len() > 32 * 1024, "9 limbs × 2 polys × 2 KiB each");
    let received = RawCiphertext::from_bytes(&wire).unwrap();
    let x = fideslib::Ct::from_backend(
        &engine,
        engine.backend().load(&received).unwrap(),
        data.len(),
    );

    // Server program: y = (x² + 0.25) rotated left by one.
    let y = (x.try_square().unwrap() + 0.25).rotate(1).unwrap();

    // Wire back.
    let reply = engine.backend().store(y.backend_ct()).unwrap();
    let reply = RawCiphertext::from_bytes(&reply.to_bytes()).unwrap();
    assert!(
        reply.noise_log2 > 0.0,
        "noise estimate travels with the ciphertext"
    );
    let y = fideslib::Ct::from_backend(&engine, engine.backend().load(&reply).unwrap(), data.len());

    let got = engine.decrypt(&y).unwrap();
    for i in 0..32 {
        let src = data[(i + 1) % 32];
        let expect = src * src + 0.25;
        assert!(
            (got[i] - expect).abs() < 1e-4,
            "slot {i}: {} vs {expect}",
            got[i]
        );
    }
}

/// The cost-only execution mode must produce exactly the same kernel
/// schedule (and therefore timing) as functional mode — the data-oblivious
/// property DESIGN.md's full-scale benchmarks rely on. Exercises the raw
/// layered API deliberately: the property concerns the kernel layer.
#[test]
fn cost_only_schedule_matches_functional() {
    let params = CkksParameters::toy();
    // Real client material so the functional run has data to chew on; the
    // cost-only run ignores the contents but must produce the same schedule.
    let raw = params.to_raw();
    let client = ClientContext::new(raw.clone());
    let mut kg = KeyGenerator::new(&client, 11);
    let sk = kg.secret_key();
    let pk = kg.public_key(&sk);
    let relin = kg.relinearization_key(&sk);
    let rot1 = kg.rotation_key(&sk, 1);
    let rot2 = kg.rotation_key(&sk, 2);
    let mut rng = StdRng::seed_from_u64(12);
    let data: Vec<f64> = (0..16).map(|i| i as f64 * 0.01).collect();
    let raw_ct = client
        .encrypt(
            &client
                .encode_real(&data, client.params().scale(), raw.max_level())
                .unwrap(),
            &pk,
            &mut rng,
        )
        .unwrap();

    let run = |mode: ExecMode| {
        let gpu = GpuSim::new(DeviceSpec::rtx_4090(), mode);
        let ctx = CkksContext::new(params.clone(), std::sync::Arc::clone(&gpu));
        let keys = adapter::load_eval_keys(
            &ctx,
            Some(&relin),
            &[(1, rot1.clone()), (2, rot2.clone())],
            None,
        )
        .unwrap();
        let ct = adapter::load_ciphertext(&ctx, &raw_ct).unwrap();
        let mut prod = ct.mul(&ct, &keys).unwrap();
        prod.rescale_in_place().unwrap();
        let rot = prod.rotate(2, &keys).unwrap();
        let _ = rot.add(&prod.rotate(1, &keys).unwrap()).unwrap();
        let elapsed = gpu.sync();
        let stats = gpu.stats();
        (
            elapsed,
            stats.kernel_launches,
            stats.dram_read_bytes,
            stats.l2_hit_bytes,
            stats.write_bytes,
            stats.int32_ops,
        )
    };
    let functional = run(ExecMode::Functional);
    let cost_only = run(ExecMode::CostOnly);
    assert_eq!(
        functional, cost_only,
        "kernel schedule must be data-oblivious"
    );
}

/// Device-memory accounting through a whole engine session: everything
/// allocated on the simulated device is released when the objects drop.
#[test]
fn device_memory_is_reclaimed() {
    let engine = CkksEngine::builder()
        .log_n(10)
        .levels(4)
        .scale_bits(40)
        .dnum(2)
        .exec_mode(ExecMode::CostOnly)
        .seed(6)
        .build()
        .unwrap();
    let ct = engine.encrypt(&[0.0; 8]).unwrap();
    let before = engine.sim_stats().unwrap().current_alloc_bytes;
    let prod = ct.try_square().unwrap();
    drop(prod);
    let after = engine.sim_stats().unwrap().current_alloc_bytes;
    assert_eq!(before, after, "operation temporaries must be freed");
    assert!(engine.sim_stats().unwrap().peak_alloc_bytes > 0);
}

/// Cross-parameter-set isolation: two engine sessions with different
/// parameters and devices coexist in one process (the Rust port removes the
/// paper's singleton limitation).
#[test]
fn multiple_engine_sessions_coexist() {
    let a = CkksEngine::builder()
        .log_n(10)
        .levels(4)
        .scale_bits(40)
        .seed(3)
        .build()
        .unwrap();
    let b = CkksEngine::builder()
        .log_n(11)
        .levels(3)
        .scale_bits(42)
        .dnum(2)
        .device(DeviceSpec::v100())
        .seed(4)
        .build()
        .unwrap();

    for engine in [&a, &b] {
        let ct = engine.encrypt(&[0.5, -0.25]).unwrap();
        let doubled = ct.try_mul_int(2).unwrap();
        let got = engine.decrypt(&doubled).unwrap();
        assert!((got[0] - 1.0).abs() < 1e-5);
        assert!((got[1] + 0.5).abs() < 1e-5);
    }
}

/// Handles from different sessions must not combine.
#[test]
fn cross_session_handles_rejected() {
    let a = CkksEngine::builder()
        .log_n(10)
        .levels(3)
        .seed(1)
        .build()
        .unwrap();
    let b = CkksEngine::builder()
        .log_n(10)
        .levels(3)
        .seed(1)
        .build()
        .unwrap();
    let x = a.encrypt(&[1.0]).unwrap();
    let y = b.encrypt(&[1.0]).unwrap();
    assert!(matches!(
        x.try_add(&y),
        Err(fideslib::core::FidesError::Unsupported(_))
    ));
}
