//! Property tests for the `CkksEngine` session API: encrypt → compute →
//! decrypt round-trips on **both** backends, cross-backend agreement, and
//! the automatic level-alignment policy.

use fideslib::{BackendChoice, CkksEngine};
use proptest::prelude::*;

fn engine(backend: BackendChoice, seed: u64) -> CkksEngine {
    CkksEngine::builder()
        .log_n(10)
        .levels(4)
        .scale_bits(40)
        .dnum(2)
        .backend(backend)
        .seed(seed)
        .build()
        .expect("test parameters are valid")
}

/// Deterministic pseudo-random message in `[-1, 1]`.
fn message(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2001) as f64 / 1000.0 - 1.0
        })
        .collect()
}

fn roundtrip_program(backend: BackendChoice, seed: u64, len: usize) -> (Vec<f64>, Vec<f64>) {
    let engine = engine(backend, seed);
    let xs = message(seed, len);
    let ys = message(seed.wrapping_mul(31).wrapping_add(7), len);
    let x = engine.encrypt(&xs).unwrap();
    let y = engine.encrypt(&ys).unwrap();
    // a*b + 2a: one ct×ct multiply (relinearized + rescaled), one scalar
    // multiply, and one auto-aligned addition.
    let z = &x * &y + &x * 2.0;
    let got = engine.decrypt(&z).unwrap();
    let expect: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b + 2.0 * a).collect();
    (got, expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// encrypt → (a·b + 2a) → decrypt stays within CKKS tolerance on the
    /// simulated-GPU backend.
    #[test]
    fn roundtrip_gpu_sim(seed in any::<u64>(), log_len in 0u32..6) {
        let (got, expect) = roundtrip_program(BackendChoice::GpuSim, seed, 1 << log_len);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            prop_assert!((g - e).abs() < 1e-4, "slot {i}: {g} vs {e}");
        }
    }

    /// The same program within tolerance on the CPU reference backend.
    #[test]
    fn roundtrip_cpu_reference(seed in any::<u64>(), log_len in 0u32..6) {
        let (got, expect) = roundtrip_program(BackendChoice::Cpu, seed, 1 << log_len);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            prop_assert!((g - e).abs() < 1e-4, "slot {i}: {g} vs {e}");
        }
    }

    /// Seeded identically, the two backends must agree on the decrypted
    /// result to within CKKS precision (they compute the same RNS math).
    #[test]
    fn backends_agree(seed in any::<u64>()) {
        let (gpu, _) = roundtrip_program(BackendChoice::GpuSim, seed, 16);
        let (cpu, _) = roundtrip_program(BackendChoice::Cpu, seed, 16);
        for (i, (a, b)) in gpu.iter().zip(&cpu).enumerate() {
            prop_assert!((a - b).abs() < 1e-4, "slot {i}: gpu {a} vs cpu {b}");
        }
    }

    /// Mixed-level operands auto-align instead of erroring: combining a
    /// fresh ciphertext with one that has been multiplied (and rescaled)
    /// drops the fresh operand transparently.
    #[test]
    fn mixed_levels_auto_align(seed in any::<u64>()) {
        for backend in [BackendChoice::GpuSim, BackendChoice::Cpu] {
            let engine = engine(backend, seed);
            let xs = message(seed, 8);
            let ys = message(seed ^ 0xFACE, 8);
            let x = engine.encrypt(&xs).unwrap();
            let y = engine.encrypt(&ys).unwrap();
            let low = (&x * &y) * 0.5;                    // two levels below
            prop_assert_eq!(low.level(), engine.max_level() - 2);
            prop_assert_eq!(x.level(), engine.max_level());
            // add, sub and mul all align the fresh operand down.
            let sum = &low + &x;
            prop_assert_eq!(sum.level(), low.level());
            let diff = &x - &low;
            prop_assert_eq!(diff.level(), low.level());
            let prod = &x * &low;
            prop_assert_eq!(prod.level(), low.level() - 1);
            let got = engine.decrypt(&sum).unwrap();
            for i in 0..8 {
                let expect = xs[i] * ys[i] * 0.5 + xs[i];
                prop_assert!((got[i] - expect).abs() < 1e-4,
                    "{:?} slot {i}: {} vs {expect}", backend, got[i]);
            }
        }
    }
}

/// Plaintext-vector operands: `ct + &[f64]` and `ct * &[f64]`.
#[test]
fn plaintext_vector_operands() {
    for backend in [BackendChoice::GpuSim, BackendChoice::Cpu] {
        let engine = engine(backend, 99);
        let xs = message(123, 8);
        let mask: Vec<f64> = (0..8).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let x = engine.encrypt(&xs).unwrap();
        let masked = &x * &mask[..];
        let shifted = &x + &mask[..];
        let got_m = engine.decrypt(&masked).unwrap();
        let got_s = engine.decrypt(&shifted).unwrap();
        for i in 0..8 {
            assert!(
                (got_m[i] - xs[i] * mask[i]).abs() < 1e-4,
                "{backend:?} mul slot {i}"
            );
            assert!(
                (got_s[i] - (xs[i] + mask[i])).abs() < 1e-4,
                "{backend:?} add slot {i}"
            );
        }
    }
}

/// Exhausting the chain reports a typed error rather than panicking (via
/// the `try_` API).
#[test]
fn level_exhaustion_is_typed() {
    let engine = engine(BackendChoice::GpuSim, 5);
    let x = engine.encrypt(&[0.5]).unwrap();
    let floor = x.at_level(0).unwrap();
    assert!(matches!(
        floor.try_mul_scalar(2.0),
        Err(fideslib::core::FidesError::NotEnoughLevels { .. })
    ));
    assert!(matches!(
        floor.try_mul(&floor),
        Err(fideslib::core::FidesError::NotEnoughLevels { .. })
    ));
}

/// Negation and subtraction identities.
#[test]
fn negation_identities() {
    for backend in [BackendChoice::GpuSim, BackendChoice::Cpu] {
        let engine = engine(backend, 11);
        let xs = message(77, 8);
        let x = engine.encrypt(&xs).unwrap();
        let zero = &x - &x;
        let neg = engine.decrypt(&-&x).unwrap();
        let z = engine.decrypt(&zero).unwrap();
        let flipped = engine.decrypt(&(1.0 - &x)).unwrap();
        for i in 0..8 {
            assert!((neg[i] + xs[i]).abs() < 1e-4);
            assert!(z[i].abs() < 1e-4);
            assert!((flipped[i] - (1.0 - xs[i])).abs() < 1e-4);
        }
    }
}
