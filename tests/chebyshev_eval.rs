//! Property test for the encrypted polynomial evaluator: the
//! Paterson–Stockmeyer BSGS evaluation (`Ct::try_chebyshev`) must match the
//! plain Horner-style recurrence (Clenshaw, the Chebyshev-basis form of
//! Horner's rule) on random coefficients and evaluation points, within CKKS
//! approximation error — on **both** backends.

use fides_api::{BackendChoice, CkksEngine};
use fides_core::boot::eval_chebyshev_plain;
use proptest::prelude::*;

fn engine(backend: BackendChoice, seed: u64) -> CkksEngine {
    CkksEngine::builder()
        .log_n(10)
        .levels(9)
        .scale_bits(40)
        .dnum(2)
        .backend(backend)
        .seed(seed)
        .build()
        .expect("test parameters are valid")
}

/// Plain Horner/Clenshaw reference on `[-1, 1]`.
fn reference(coeffs: &[f64], xs: &[f64]) -> Vec<f64> {
    xs.iter()
        .map(|&x| eval_chebyshev_plain(coeffs, -1.0, 1.0, x))
        .collect()
}

/// Deterministic pseudo-random values in `[-1, 1]`.
fn randoms(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2001) as f64 / 1000.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn paterson_stockmeyer_matches_horner_on_both_backends(
        seed in any::<u64>(),
        degree in 1usize..=12,
        n_points in 4usize..=8,
    ) {
        // Random coefficients, normalized by their l1 norm so the series
        // output stays within [-1, 1]-ish and precision bounds are uniform.
        let raw_coeffs = randoms(seed.wrapping_mul(31).wrapping_add(5), degree + 1);
        let l1: f64 = raw_coeffs.iter().map(|c| c.abs()).sum::<f64>().max(1.0);
        let coeffs: Vec<f64> = raw_coeffs.iter().map(|c| c / l1).collect();
        let points = randoms(seed, n_points);
        let expect = reference(&coeffs, &points);

        for backend in [BackendChoice::GpuSim, BackendChoice::Cpu] {
            let e = engine(backend, seed);
            let ct = e.encrypt(&points).unwrap();
            let out = ct.try_chebyshev(&coeffs).unwrap();
            let got = e.decrypt(&out).unwrap();
            for (i, (g, want)) in got.iter().zip(&expect).enumerate() {
                prop_assert!(
                    (g - want).abs() < 2e-3,
                    "{:?} slot {i}: PS {g} vs Horner {want}",
                    backend
                );
            }
        }
    }
}

/// Degenerate series (constant, single term) still evaluate correctly.
#[test]
fn degenerate_series() {
    let e = engine(BackendChoice::Cpu, 3);
    let ct = e.encrypt(&[0.5, -0.5]).unwrap();
    // Constant series: T_0 only.
    let c = e.decrypt(&ct.try_chebyshev(&[0.25]).unwrap()).unwrap();
    assert!((c[0] - 0.25).abs() < 1e-3 && (c[1] - 0.25).abs() < 1e-3);
    // Pure T_1: identity.
    let t1 = e.decrypt(&ct.try_chebyshev(&[0.0, 1.0]).unwrap()).unwrap();
    assert!((t1[0] - 0.5).abs() < 1e-3 && (t1[1] + 0.5).abs() < 1e-3);
}
